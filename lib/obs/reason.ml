(* Stable machine-readable exit reasons.

   Every nonzero exit of the CLI funnels through this registry: a command
   that wants to fail raises [Exit_reason] with a structured reason, the
   toplevel catches it, prints exactly one JSON line on stderr —
   {"schema":1,"type":"reason","code":"PCL-Exxx","message":...,
    payload fields...}
   — and exits 1.  Codes are stable identifiers (append-only; never
   renumber): scripts match on ["code"], humans read ["message"].  The
   catalogue below is the single source of truth the docs table and the
   exhaustiveness test check against. *)

type t =
  | Internal_error of { exn : string }
  | Cli_error of { rc : int }
  | Invalid_input of { msg : string }
  | No_consistency of { failing : int; executions : int; tms : string list }
  | Contract_violation of {
      violations : int;
      runs : int;
      kinds : (string * int) list;  (* violation kind -> count *)
    }
  | Unexpected_findings of {
      unexpected : int;
      total : int;
      lints : string list;  (* lint (pass) ids of the unexpected findings *)
    }
  | Closure_violation of {
      violations : int;
      cells : int;
      witnesses : string list;  (* "tm/fault/cm" of each flipped cell *)
    }
  | Violation_trace of { trace : string; verdicts : int; sources : string list }
  | Stall of {
      pid : int;  (* the stalled process *)
      step : int option;  (* global index of its last step, if any *)
      obj : string option;  (* contention object: the last step's base object *)
      prim : string option;  (* primitive of that last step *)
    }
  | Cost_expectation of {
      tm : string;
      workload : string;
      violated : string list;  (* expectation labels that failed *)
    }
  | Soak_stall of {
      tm : string;
      pid : int;  (* the wedged process *)
      step : int option;  (* global index of its last step, if any *)
      obj : string option;  (* base object of that last step *)
      prim : string option;  (* primitive of that last step *)
      txns : int;  (* transactions committed before the wedge *)
      target : int;  (* the soak's transaction target *)
    }
  | Progress_violation of {
      tm : string option;  (* TM under lint, when the target names one *)
      pass : string;  (* offending detector: progressiveness | pwf *)
      pid : int option;  (* process of the offending transaction *)
      txn : int option;  (* offending transaction id *)
      witness_step : int option;  (* step-level witness (stamp or depth) *)
      unexpected : int;  (* all unexpected findings of the lint run *)
    }
  | Conform_failure of {
      failed : string list;  (* scenario ids with a non-quarantined failure *)
      timeouts : string list;
          (* the subset whose failure is a per-scenario budget exhaustion *)
      scenarios : int;  (* scenarios executed (or replayed from the journal) *)
      cells : int;  (* (tm, cm) cells executed across all scenarios *)
      quarantined : int;  (* known-bad scenarios downgraded to warnings *)
    }

exception Exit_reason of t

let code = function
  | Internal_error _ -> "PCL-E000"
  | Cli_error _ -> "PCL-E001"
  | Invalid_input _ -> "PCL-E002"
  | No_consistency _ -> "PCL-E101"
  | Contract_violation _ -> "PCL-E102"
  | Unexpected_findings _ -> "PCL-E103"
  | Closure_violation _ -> "PCL-E104"
  | Violation_trace _ -> "PCL-E105"
  | Stall _ -> "PCL-E106"
  | Cost_expectation _ -> "PCL-E107"
  | Soak_stall _ -> "PCL-E108"
  | Progress_violation _ -> "PCL-E109"
  | Conform_failure _ -> "PCL-E110"

(* code -> one-line meaning; the docs reason-code table mirrors this *)
let catalogue =
  [
    ("PCL-E000", "internal error: an unexpected exception escaped");
    ("PCL-E001", "command-line error: cmdliner rejected the invocation");
    ("PCL-E002", "invalid input: unknown name, bad schedule or parse error");
    ("PCL-E101", "exploration found executions satisfying no consistency \
                  condition");
    ("PCL-E102", "fuzzing found TM contract violations");
    ("PCL-E103", "lint produced findings not expected for the TM");
    ("PCL-E104", "chaos sweep found crash-closure violations");
    ("PCL-E105", "explained trace carries consistency violations");
    ("PCL-E106", "schedule stalled: step budget exhausted before completion");
    ("PCL-E107", "cost matrix violated the expected-cost table");
    ("PCL-E108", "soak stalled: segment budget exhausted before the \
                  transaction target");
    ("PCL-E109", "lint found a progress-guarantee violation \
                  (progressiveness or partial wait-freedom)");
    ("PCL-E110", "conformance sweep failed: scenarios diverged from their \
                  declared expectations (timeouts attributed per cell)");
  ]

let message r =
  match r with
  | Internal_error { exn } -> Printf.sprintf "internal error: %s" exn
  | Cli_error { rc } ->
      Printf.sprintf "command-line error (cmdliner exit %d)" rc
  | Invalid_input { msg } -> msg
  | No_consistency { failing; executions; _ } ->
      Printf.sprintf
        "%d of %d execution(s) satisfy no consistency condition" failing
        executions
  | Contract_violation { violations; runs; _ } ->
      Printf.sprintf "%d contract violation(s) across %d fuzz run(s)"
        violations runs
  | Unexpected_findings { unexpected; total; _ } ->
      Printf.sprintf "%d unexpected finding(s) (of %d total)" unexpected
        total
  | Closure_violation { violations; cells; _ } ->
      Printf.sprintf "%d crash-closure violation(s) across %d chaos cell(s)"
        violations cells
  | Violation_trace { trace; verdicts; _ } ->
      Printf.sprintf "%s: %d consistency verdict(s) recorded" trace verdicts
  | Stall { pid; step; _ } -> (
      match step with
      | None -> Printf.sprintf "p%d stalled before taking any step" pid
      | Some i -> Printf.sprintf "p%d stalled; its last step was #%d" pid i)
  | Cost_expectation { tm; workload; _ } ->
      Printf.sprintf "cost expectations violated for %s on %s" tm workload
  | Soak_stall { tm; pid; step; txns; target; _ } -> (
      match step with
      | None ->
          Printf.sprintf
            "soak of %s stalled: p%d wedged before taking any step \
             (%d of %d txns)"
            tm pid txns target
      | Some i ->
          Printf.sprintf
            "soak of %s stalled: p%d wedged; its last step was #%d \
             (%d of %d txns)"
            tm pid i txns target)
  | Progress_violation { tm; pass; txn; witness_step; _ } ->
      Printf.sprintf "%s violated by %s%s%s"
        (if pass = "pwf" then "partial wait-freedom" else pass)
        (Option.value ~default:"the trace" tm)
        (match txn with
        | Some t -> Printf.sprintf " (txn %d)" t
        | None -> "")
        (match witness_step with
        | Some s -> Printf.sprintf ", witness step %d" s
        | None -> "")
  | Conform_failure { failed; timeouts; scenarios; _ } ->
      Printf.sprintf "%d of %d scenario(s) failed conformance%s"
        (List.length failed) scenarios
        (match timeouts with
        | [] -> ""
        | ts -> Printf.sprintf " (%d by budget exhaustion)" (List.length ts))

let strings ss = Obs_json.List (List.map (fun s -> Obs_json.String s) ss)

let payload : t -> (string * Obs_json.t) list = function
  | Internal_error { exn } -> [ ("exn", Obs_json.String exn) ]
  | Cli_error { rc } -> [ ("rc", Obs_json.Int rc) ]
  | Invalid_input _ -> []
  | No_consistency { failing; executions; tms } ->
      [
        ("failing", Obs_json.Int failing);
        ("executions", Obs_json.Int executions);
        ("tms", strings tms);
      ]
  | Contract_violation { violations; runs; kinds } ->
      [
        ("violations", Obs_json.Int violations);
        ("runs", Obs_json.Int runs);
        ( "kinds",
          Obs_json.Obj (List.map (fun (k, n) -> (k, Obs_json.Int n)) kinds)
        );
      ]
  | Unexpected_findings { unexpected; total; lints } ->
      [
        ("unexpected", Obs_json.Int unexpected);
        ("total", Obs_json.Int total);
        ("lints", strings lints);
      ]
  | Closure_violation { violations; cells; witnesses } ->
      [
        ("violations", Obs_json.Int violations);
        ("cells", Obs_json.Int cells);
        ("witnesses", strings witnesses);
      ]
  | Violation_trace { trace; verdicts; sources } ->
      [
        ("trace", Obs_json.String trace);
        ("verdicts", Obs_json.Int verdicts);
        ("sources", strings sources);
      ]
  | Stall { pid; step; obj; prim } ->
      let opt name f = function
        | None -> [ (name, Obs_json.Null) ]
        | Some v -> [ (name, f v) ]
      in
      (("pid", Obs_json.Int pid) :: opt "step" (fun i -> Obs_json.Int i) step)
      @ opt "object" (fun s -> Obs_json.String s) obj
      @ opt "prim" (fun s -> Obs_json.String s) prim
  | Cost_expectation { tm; workload; violated } ->
      [
        ("tm", Obs_json.String tm);
        ("workload", Obs_json.String workload);
        ("violated", strings violated);
      ]
  | Soak_stall { tm; pid; step; obj; prim; txns; target } ->
      let opt name f = function
        | None -> [ (name, Obs_json.Null) ]
        | Some v -> [ (name, f v) ]
      in
      [ ("tm", Obs_json.String tm); ("pid", Obs_json.Int pid) ]
      @ opt "step" (fun i -> Obs_json.Int i) step
      @ opt "object" (fun s -> Obs_json.String s) obj
      @ opt "prim" (fun s -> Obs_json.String s) prim
      @ [ ("txns", Obs_json.Int txns); ("target", Obs_json.Int target) ]
  | Progress_violation { tm; pass; pid; txn; witness_step; unexpected } ->
      let opt name f = function
        | None -> [ (name, Obs_json.Null) ]
        | Some v -> [ (name, f v) ]
      in
      opt "tm" (fun s -> Obs_json.String s) tm
      @ [ ("pass", Obs_json.String pass) ]
      @ opt "pid" (fun i -> Obs_json.Int i) pid
      @ opt "txn" (fun i -> Obs_json.Int i) txn
      @ opt "witness_step" (fun i -> Obs_json.Int i) witness_step
      @ [ ("unexpected", Obs_json.Int unexpected) ]
  | Conform_failure { failed; timeouts; scenarios; cells; quarantined } ->
      [
        ("failed", strings failed);
        ("timeouts", strings timeouts);
        ("scenarios", Obs_json.Int scenarios);
        ("cells", Obs_json.Int cells);
        ("quarantined", Obs_json.Int quarantined);
      ]

let to_json r =
  Obs_json.Obj
    ([
       Schema.field;
       ("type", Obs_json.String "reason");
       ("code", Obs_json.String (code r));
       ("message", Obs_json.String (message r));
     ]
    @ payload r)

(* [emitted] lets the toplevel guarantee "exactly one reason line per
   nonzero exit" even for exits it did not mint itself (cmdliner's own
   parse errors return nonzero from [Cmd.eval]). *)
let emitted_flag = ref false
let emitted () = !emitted_flag

let emit r =
  emitted_flag := true;
  (* anything buffered on stdout lands before the reason line when the
     two streams share a terminal *)
  Format.pp_print_flush Format.std_formatter ();
  flush stdout;
  Printf.eprintf "%s\n%!" (Obs_json.to_string (to_json r))

let exit_with r = raise (Exit_reason r)
