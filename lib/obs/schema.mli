(** The shared artifact-schema version.  Every machine-readable output of
    the workbench — flight recordings, lint findings, report JSONL, chaos
    cells, cost rows, reason lines — carries the same ["schema"] key with
    this value, so consumers check one number regardless of producer. *)

val version : int

val field : string * Obs_json.t
(** [("schema", Int version)] — splice into any JSON object. *)
