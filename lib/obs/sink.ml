(* The telemetry sink: one metrics registry plus one span tracer plus run
   metadata, with in-memory aggregation (the table printer) and a JSONL
   export.

   A process-wide [default] sink exists so instrumentation deep in the
   stack (memory applies, TM operations, checker verdicts) records
   without threading a sink through every signature; the CLI resets it at
   the start of a run and exports it at the end.  Scoped sinks can still
   be created for tests. *)

type t = {
  metrics : Metrics.t;
  tracer : Span.t;
  mutable meta : (string * string) list;
}

let create ?cap ?clock ?steps () =
  {
    metrics = Metrics.create ();
    tracer = Span.create ?cap ?clock ?steps ();
    meta = [];
  }

let default = create ()

let metrics t = t.metrics
let tracer t = t.tracer

let set_meta t k v = t.meta <- (k, v) :: List.remove_assoc k t.meta
let meta t = List.rev t.meta

let reset t =
  Metrics.reset t.metrics;
  Span.reset t.tracer;
  t.meta <- []

(* ------------------------------------------------------------------ *)
(* Conveniences recording into the default sink — the instrumentation
   entry points used across the workbench. *)

let incr ?labels name = Metrics.incr_c default.metrics ?labels name
let add ?labels name n = Metrics.add_c default.metrics ?labels name n
let observe ?labels name x = Metrics.observe_h default.metrics ?labels name x
let set_gauge ?labels name v = Metrics.set_g default.metrics ?labels name v
let span ?labels name f = Span.with_ default.tracer ?labels name f

let with_step_source steps f = Span.with_step_source default.tracer steps f

(** Run [f], observing its wall duration (ns) into histogram [name]. *)
let time ?labels name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  observe ?labels name ((Unix.gettimeofday () -. t0) *. 1e9);
  r

(* ------------------------------------------------------------------ *)
(* JSONL export.  Schema (one JSON object per line):
     {"type":"run","schema":1,"meta":{...}}
     {"type":"metric","kind":"counter","name":N,"labels":{...},"value":V}
     {"type":"metric","kind":"gauge",...,"value":V}
     {"type":"metric","kind":"histogram",...,"count":N,"sum":S,"min":m,
      "max":M,"p50":…,"p95":…,"p99":…}
     {"type":"span","name":N,"labels":{...},"depth":D,"seq":Q,
      "start_step":A,"end_step":B,"steps":B-A,"wall_ns":W}
     {"type":"spans_dropped","count":N}        (only if the cap was hit) *)

let labels_json (labels : Metrics.labels) =
  Obs_json.Obj (List.map (fun (k, v) -> (k, Obs_json.String v)) labels)

let sample_json (s : Metrics.sample) : Obs_json.t =
  let common kind =
    [
      ("type", Obs_json.String "metric");
      ("kind", Obs_json.String kind);
      ("name", Obs_json.String s.name);
      ("labels", labels_json s.labels);
    ]
  in
  match s.value with
  | Metrics.VCounter n -> Obs_json.Obj (common "counter" @ [ ("value", Obs_json.Int n) ])
  | Metrics.VGauge v -> Obs_json.Obj (common "gauge" @ [ ("value", Obs_json.Float v) ])
  | Metrics.VHistogram h ->
      Obs_json.Obj
        (common "histogram"
        @ [
            ("count", Obs_json.Int h.Metrics.count);
            ("sum", Obs_json.Float h.Metrics.sum);
            ("min", Obs_json.Float h.Metrics.min);
            ("max", Obs_json.Float h.Metrics.max);
            ("p50", Obs_json.Float h.Metrics.p50);
            ("p95", Obs_json.Float h.Metrics.p95);
            ("p99", Obs_json.Float h.Metrics.p99);
          ])

let span_json (sp : Span.span) : Obs_json.t =
  Obs_json.Obj
    [
      ("type", Obs_json.String "span");
      ("name", Obs_json.String sp.Span.name);
      ("labels", labels_json sp.Span.labels);
      ("depth", Obs_json.Int sp.Span.depth);
      ("seq", Obs_json.Int sp.Span.seq);
      ("start_step", Obs_json.Int sp.Span.start_step);
      ("end_step", Obs_json.Int sp.Span.end_step);
      ("steps", Obs_json.Int (Span.steps_of sp));
      ("wall_ns", Obs_json.Int sp.Span.wall_ns);
    ]

let jsonl_values t : Obs_json.t list =
  let run_line =
    Obs_json.Obj
      [
        ("type", Obs_json.String "run");
        Schema.field;
        ("meta", labels_json (meta t));
      ]
  in
  let dropped =
    if Span.dropped t.tracer = 0 then []
    else
      [
        Obs_json.Obj
          [
            ("type", Obs_json.String "spans_dropped");
            ("count", Obs_json.Int (Span.dropped t.tracer));
          ];
      ]
  in
  (run_line :: List.map sample_json (Metrics.snapshot t.metrics))
  @ List.map span_json (Span.spans t.tracer)
  @ dropped

let to_jsonl t =
  String.concat "\n" (List.map Obs_json.to_string (jsonl_values t)) ^ "\n"

let write_jsonl t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl t))

(* ------------------------------------------------------------------ *)
(* Aggregated human-readable table *)

let pp_labels ppf = function
  | [] -> ()
  | labels ->
      Fmt.pf ppf "{%a}"
        Fmt.(
          list ~sep:(any ",") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
        labels

let pp_table ppf t =
  let samples = Metrics.snapshot t.metrics in
  if meta t <> [] then
    Fmt.pf ppf "# run %a@\n" pp_labels (meta t);
  List.iter
    (fun (s : Metrics.sample) ->
      match s.value with
      | Metrics.VCounter n ->
          Fmt.pf ppf "%-34s %a %d@\n" s.name pp_labels s.labels n
      | Metrics.VGauge v ->
          Fmt.pf ppf "%-34s %a %g@\n" s.name pp_labels s.labels v
      | Metrics.VHistogram h ->
          Fmt.pf ppf
            "%-34s %a count=%d sum=%.0f min=%.0f max=%.0f mean=%.1f \
             p50=%.0f p95=%.0f p99=%.0f@\n"
            s.name pp_labels s.labels h.Metrics.count h.Metrics.sum
            h.Metrics.min h.Metrics.max
            (if h.Metrics.count = 0 then 0.
             else h.Metrics.sum /. float_of_int h.Metrics.count)
            h.Metrics.p50 h.Metrics.p95 h.Metrics.p99)
    samples;
  let n_spans = Span.count t.tracer in
  if n_spans > 0 then begin
    Fmt.pf ppf "# %d spans recorded" n_spans;
    if Span.dropped t.tracer > 0 then
      Fmt.pf ppf " (%d dropped past the buffer cap)" (Span.dropped t.tracer);
    Fmt.pf ppf "@\n"
  end
