(* Hierarchical phase profiling over the span tracer.

   The tracer records completed spans in completion order with their
   nesting depth; that pair of facts is enough to rebuild the call
   forest without timestamps: walking the list with a stack, a span at
   depth d adopts (as children) exactly the already-completed subtrees
   deeper than d sitting on top of the stack — they completed before it
   and nothing shallower intervened.  Aggregation then keys on the
   name path from the root ("soak.segment;soak.drive"), giving each
   phase a call count, total (inclusive) and self (exclusive) wall time
   and step count — the paper's own cost measure rides along for free.

   Two exports: the collapsed-stack text format flamegraph.pl and
   speedscope consume ("a;b;c 1234", one line per stack, sorted), and
   Chrome trace events alongside the flight recorder's, using logical
   step indices as microsecond timestamps so the trace is deterministic
   and lines up with the step axis of every other artifact. *)

type node = {
  path : string list;  (** names from the root, outermost first *)
  mutable count : int;
  mutable total_ns : int;
  mutable self_ns : int;
  mutable total_steps : int;
  mutable self_steps : int;
}

type t = { tbl : (string, node) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let key path = String.concat ";" path

let node t path =
  let k = key path in
  match Hashtbl.find_opt t.tbl k with
  | Some n -> n
  | None ->
      let n =
        {
          path;
          count = 0;
          total_ns = 0;
          self_ns = 0;
          total_steps = 0;
          self_steps = 0;
        }
      in
      Hashtbl.add t.tbl k n;
      n

(* -- call-forest reconstruction ---------------------------------------- *)

type tree = { span : Span.span; children : tree list }

(** Rebuild the call forest from completion-ordered spans.  The stack
    holds completed subtrees still awaiting their parent, newest first;
    a span at depth [d] pops the contiguous run of strictly deeper
    subtrees — its children, in completion order once re-reversed. *)
let forest (spans : Span.span list) : tree list =
  let stack = ref [] in
  List.iter
    (fun (sp : Span.span) ->
      let rec take kids = function
        | tr :: rest when tr.span.Span.depth > sp.Span.depth ->
            take (tr :: kids) rest
        | rest -> (kids, rest)
      in
      let children, rest = take [] !stack in
      stack := { span = sp; children } :: rest)
    spans;
  List.rev !stack

let rec add_tree t rpath (tr : tree) =
  let sp = tr.span in
  let rpath = sp.Span.name :: rpath in
  let kid_ns = ref 0 and kid_steps = ref 0 in
  List.iter
    (fun (k : tree) ->
      kid_ns := !kid_ns + k.span.Span.wall_ns;
      kid_steps := !kid_steps + Span.steps_of k.span;
      add_tree t rpath k)
    tr.children;
  let n = node t (List.rev rpath) in
  let steps = Span.steps_of sp in
  n.count <- n.count + 1;
  n.total_ns <- n.total_ns + sp.Span.wall_ns;
  n.self_ns <- n.self_ns + max 0 (sp.Span.wall_ns - !kid_ns);
  n.total_steps <- n.total_steps + steps;
  n.self_steps <- n.self_steps + max 0 (steps - !kid_steps)

(** Fold more spans into an existing profile — the incremental path a
    long soak uses: aggregate each segment's spans, then reset the
    tracer, so the profile stays O(distinct phases) while the run is
    O(millions of transactions). *)
let add_spans t spans = List.iter (add_tree t []) (forest spans)

let of_spans spans =
  let t = create () in
  add_spans t spans;
  t

(** Fold [src] into [dst] (profiles of disjoint runs add pointwise). *)
let add_into ~dst src =
  Hashtbl.iter
    (fun _ (s : node) ->
      let d = node dst s.path in
      d.count <- d.count + s.count;
      d.total_ns <- d.total_ns + s.total_ns;
      d.self_ns <- d.self_ns + s.self_ns;
      d.total_steps <- d.total_steps + s.total_steps;
      d.self_steps <- d.self_steps + s.self_steps)
    src.tbl

let merge a b =
  let t = create () in
  add_into ~dst:t a;
  add_into ~dst:t b;
  t

let nodes t =
  Hashtbl.fold (fun _ n acc -> n :: acc) t.tbl []
  |> List.sort (fun a b -> compare a.path b.path)

(* -- exports ------------------------------------------------------------ *)

type metric = Wall_ns | Steps | Calls

let metric_of (m : metric) (n : node) =
  match m with
  | Wall_ns -> n.self_ns
  | Steps -> n.self_steps
  | Calls -> n.count

(** The collapsed-stack text format ("a;b;c 1234\n", lexicographically
    sorted): each line weighs a stack by its {e self} value, so the sum
    over lines is the whole run — exactly what flamegraph.pl and
    speedscope expect. *)
let to_collapsed ?(metric = Wall_ns) t =
  let buf = Buffer.create 256 in
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n" (key n.path) (metric_of metric n)))
    (nodes t);
  Buffer.contents buf

(** Chrome trace events for raw spans, one complete ("ph":"X") event
    per span on a single track, with logical step indices as
    microsecond timestamps — the same deterministic convention as the
    flight recorder's export, so both open side by side in a viewer. *)
let spans_to_chrome ?(pid = 1) (spans : Span.span list) : Obs_json.t =
  let open Obs_json in
  let ev (sp : Span.span) =
    Obj
      [
        ("name", String sp.Span.name);
        ("ph", String "X");
        ("ts", Int sp.Span.start_step);
        ("dur", Int (Span.steps_of sp));
        ("pid", Int pid);
        ("tid", Int (1 + sp.Span.depth));
        ( "args",
          Obj
            ([
               ("seq", Int sp.Span.seq);
               ("wall_ns", Int sp.Span.wall_ns);
             ]
            @ List.map (fun (k, v) -> (k, String v)) sp.Span.labels) );
      ]
  in
  Obj
    [
      ("traceEvents", List (List.map ev spans));
      ("displayTimeUnit", String "ms");
    ]

let pp ppf t =
  let ns = nodes t in
  Fmt.pf ppf "@[<v>%-40s %8s %12s %12s %10s %10s@," "phase" "calls"
    "total_ms" "self_ms" "tot_steps" "self_steps";
  List.iter
    (fun n ->
      Fmt.pf ppf "%-40s %8d %12.3f %12.3f %10d %10d@," (key n.path) n.count
        (float_of_int n.total_ns /. 1e6)
        (float_of_int n.self_ns /. 1e6)
        n.total_steps n.self_steps)
    ns;
  Fmt.pf ppf "@]"
