(** A minimal JSON value type with a printer and a parser — the wire
    format of the telemetry sink's JSONL export.  The printer never emits
    [nan]/[infinity] (they become [null]); integers and finite floats
    round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no newlines — JSONL-safe). *)

val pp : Format.formatter -> t -> unit

val parse : string -> (t, string) result
(** Parse one JSON document; rejects trailing input. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] otherwise. *)

val to_int : t -> int option
val to_float : t -> float option
(** [Int] values coerce to float. *)

val to_str : t -> string option
