(* GC and allocation metering for long runs.

   A meter snapshots [Gc.quick_stat] at creation and reports deltas
   since then, sampled at deterministic tick boundaries (the caller
   decides what a tick is — the soak driver uses step-count
   boundaries, so the *sampling structure* reproduces even though the
   values are machine-dependent).  None of this ever lands in the
   byte-deterministic JSONL streams: the meter renders into a separate
   schema-stamped {"type":"perf"} record, so determinism gates on the
   main artifacts keep holding with GC metering switched on. *)

type snap = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let snap () =
  let s = Gc.quick_stat () in
  {
    (* quick_stat's minor_words only refreshes at GC slices on OCaml 5;
       Gc.minor_words reads the domain's live allocation counter *)
    minor_words = Gc.minor_words ();
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
  }

let delta a b =
  {
    minor_words = b.minor_words -. a.minor_words;
    promoted_words = b.promoted_words -. a.promoted_words;
    major_words = b.major_words -. a.major_words;
    minor_collections = b.minor_collections - a.minor_collections;
    major_collections = b.major_collections - a.major_collections;
  }

(* words allocated by the program: everything that went through the
   minor heap, plus direct major allocations (promotions counted once) *)
let allocated d = d.minor_words +. d.major_words -. d.promoted_words

type sample = {
  tick : int;  (** the deterministic boundary this sample was taken at *)
  steps : int;
  txns : int;
  alloc_words : float;  (** cumulative since the meter was created *)
  minor_collections : int;
  major_collections : int;
}

type t = {
  base : snap;
  cap : int;
  mutable samples_rev : sample list;
  mutable n : int;
}

let create ?(cap = 1024) () = { base = snap (); cap; samples_rev = []; n = 0 }

let sample t ~tick ~steps ~txns =
  let d = delta t.base (snap ()) in
  let s =
    {
      tick;
      steps;
      txns;
      alloc_words = allocated d;
      minor_collections = d.minor_collections;
      major_collections = d.major_collections;
    }
  in
  if t.n < t.cap then begin
    t.samples_rev <- s :: t.samples_rev;
    t.n <- t.n + 1
  end;
  s

let samples t = List.rev t.samples_rev
let allocated_words t = allocated (delta t.base (snap ()))

(** The schema-stamped perf record — the one place wall-clock and
    GC numbers are allowed to appear, kept out of deterministic
    streams by its ["type"]. *)
let report t ~wall_ns ~steps ~txns : Obs_json.t =
  let open Obs_json in
  let d = delta t.base (snap ()) in
  let per den v = if den > 0 then v /. float_of_int den else 0. in
  Obj
    [
      Schema.field;
      ("type", String "perf");
      ("wall_ns", Int wall_ns);
      ("steps", Int steps);
      ("txns", Int txns);
      ("minor_words", Float d.minor_words);
      ("promoted_words", Float d.promoted_words);
      ("major_words", Float d.major_words);
      ("allocated_words", Float (allocated d));
      ("minor_collections", Int d.minor_collections);
      ("major_collections", Int d.major_collections);
      ("ns_per_step", Float (per steps (float_of_int wall_ns)));
      ("words_per_step", Float (per steps (allocated d)));
      ("ns_per_txn", Float (per txns (float_of_int wall_ns)));
      ("words_per_txn", Float (per txns (allocated d)));
      ("samples", Int t.n);
    ]
