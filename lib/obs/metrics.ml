(* Named counters, gauges and histograms with labelled cardinality.

   A registry maps (metric name, canonical label set) to a mutable cell.
   Hot paths resolve a handle once ({!counter} etc.) and then pay one
   unboxed mutation per event; occasional recorders use the one-shot
   [incr_c]/[add_c]/[observe_h]/[set_g] conveniences, which look the cell
   up each time.

   Everything is deterministic except wall-clock observations made by the
   callers: two identical runs produce identical counter values, which is
   what the test suite pins down. *)

type labels = (string * string) list

(* canonical order so [("a","1");("b","2")] and its permutation are the
   same time series *)
let canon (labels : labels) : labels =
  List.sort_uniq (fun (k1, _) (k2, _) -> compare k1 k2) labels

type counter = int ref
type gauge = float ref

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

type cell_value = Counter of counter | Gauge of gauge | Hist of histogram

type cell = { name : string; labels : labels; v : cell_value }

type t = { cells : (string * labels, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create 64 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let get_cell t name labels mk =
  let labels = canon labels in
  let key = (name, labels) in
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
      let c = { name; labels; v = mk () } in
      Hashtbl.add t.cells key c;
      c

let kind_error name cell wanted =
  invalid_arg
    (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name cell)
       wanted)

let counter t ?(labels = []) name : counter =
  match (get_cell t name labels (fun () -> Counter (ref 0))).v with
  | Counter r -> r
  | v -> kind_error name v "counter"

let gauge t ?(labels = []) name : gauge =
  match (get_cell t name labels (fun () -> Gauge (ref 0.))).v with
  | Gauge r -> r
  | v -> kind_error name v "gauge"

let fresh_hist () =
  Hist { count = 0; sum = 0.; minv = infinity; maxv = neg_infinity }

let histogram t ?(labels = []) name : histogram =
  match (get_cell t name labels fresh_hist).v with
  | Hist h -> h
  | v -> kind_error name v "histogram"

(* handle operations *)
let inc (c : counter) = incr c
let add (c : counter) n = c := !c + n
let counter_value (c : counter) = !c
let set (g : gauge) v = g := v
let gauge_value (g : gauge) = !g

let observe (h : histogram) x =
  h.count <- h.count + 1;
  h.sum <- h.sum +. x;
  if x < h.minv then h.minv <- x;
  if x > h.maxv then h.maxv <- x

(* one-shot conveniences *)
let incr_c t ?labels name = inc (counter t ?labels name)
let add_c t ?labels name n = add (counter t ?labels name) n
let observe_h t ?labels name x = observe (histogram t ?labels name) x
let set_g t ?labels name v = set (gauge t ?labels name) v

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type hist_stats = { count : int; sum : float; min : float; max : float }

type value = VCounter of int | VGauge of float | VHistogram of hist_stats

type sample = { name : string; labels : labels; value : value }

let value_of_cell = function
  | Counter r -> VCounter !r
  | Gauge r -> VGauge !r
  | Hist h ->
      if h.count = 0 then VHistogram { count = 0; sum = 0.; min = 0.; max = 0. }
      else
        VHistogram { count = h.count; sum = h.sum; min = h.minv; max = h.maxv }

let snapshot t : sample list =
  Hashtbl.fold
    (fun _ (c : cell) acc ->
      { name = c.name; labels = c.labels; value = value_of_cell c.v } :: acc)
    t.cells []
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

let find t ?(labels = []) name : value option =
  Option.map
    (fun c -> value_of_cell c.v)
    (Hashtbl.find_opt t.cells (name, canon labels))

let names t : string list =
  Hashtbl.fold (fun (n, _) _ acc -> n :: acc) t.cells []
  |> List.sort_uniq compare

(** Sum of a counter over all its label sets. *)
let sum_counters t name : int =
  Hashtbl.fold
    (fun (n, _) c acc ->
      match c.v with Counter r when n = name -> acc + !r | _ -> acc)
    t.cells 0

(** Zero every cell in place.  Handles resolved before the reset stay
    valid — they point at the same cells. *)
let reset t =
  Hashtbl.iter
    (fun _ c ->
      match c.v with
      | Counter r -> r := 0
      | Gauge r -> r := 0.
      | Hist h ->
          h.count <- 0;
          h.sum <- 0.;
          h.minv <- infinity;
          h.maxv <- neg_infinity)
    t.cells
