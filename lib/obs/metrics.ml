(* Named counters, gauges and histograms with labelled cardinality.

   A registry maps (metric name, canonical label set) to a mutable cell.
   Hot paths resolve a handle once ({!counter} etc.) and then pay one
   unboxed mutation per event; occasional recorders use the one-shot
   [incr_c]/[add_c]/[observe_h]/[set_g] conveniences, which look the cell
   up each time.

   Everything is deterministic except wall-clock observations made by the
   callers: two identical runs produce identical counter values, which is
   what the test suite pins down. *)

type labels = (string * string) list

(* canonical order so [("a","1");("b","2")] and its permutation are the
   same time series *)
let canon (labels : labels) : labels =
  List.sort_uniq (fun (k1, _) (k2, _) -> compare k1 k2) labels

type counter = int ref
type gauge = float ref

(* Histograms keep a bounded, deterministically decimated sample buffer
   for quantile estimates: the first [sample_cap] observations are stored
   exactly; past that the (sorted) buffer is halved and the recording
   stride doubled, so the kept samples remain an evenly spaced sketch of
   the order statistics.  No randomness: two identical observation
   streams yield identical quantiles, which the determinism tests pin. *)
let sample_cap = 512

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
  samples : float array;  (* length [sample_cap] *)
  mutable kept : int;  (* samples in use *)
  mutable stride : int;  (* record one observation in [stride] *)
  mutable skip : int;  (* observations left before the next record *)
}

type cell_value = Counter of counter | Gauge of gauge | Hist of histogram

type cell = { name : string; labels : labels; v : cell_value }

type t = { cells : (string * labels, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create 64 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let get_cell t name labels mk =
  let labels = canon labels in
  let key = (name, labels) in
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
      let c = { name; labels; v = mk () } in
      Hashtbl.add t.cells key c;
      c

let kind_error name cell wanted =
  invalid_arg
    (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name cell)
       wanted)

let counter t ?(labels = []) name : counter =
  match (get_cell t name labels (fun () -> Counter (ref 0))).v with
  | Counter r -> r
  | v -> kind_error name v "counter"

let gauge t ?(labels = []) name : gauge =
  match (get_cell t name labels (fun () -> Gauge (ref 0.))).v with
  | Gauge r -> r
  | v -> kind_error name v "gauge"

let fresh_hist () =
  Hist
    {
      count = 0;
      sum = 0.;
      minv = infinity;
      maxv = neg_infinity;
      samples = Array.make sample_cap 0.;
      kept = 0;
      stride = 1;
      skip = 0;
    }

let histogram t ?(labels = []) name : histogram =
  match (get_cell t name labels fresh_hist).v with
  | Hist h -> h
  | v -> kind_error name v "histogram"

(* handle operations *)
let inc (c : counter) = incr c
let add (c : counter) n = c := !c + n
let counter_value (c : counter) = !c
let set (g : gauge) v = g := v
let gauge_value (g : gauge) = !g

let observe (h : histogram) x =
  h.count <- h.count + 1;
  h.sum <- h.sum +. x;
  if x < h.minv then h.minv <- x;
  if x > h.maxv then h.maxv <- x;
  if h.skip > 0 then h.skip <- h.skip - 1
  else begin
    if h.kept = sample_cap then begin
      let sorted = Array.sub h.samples 0 h.kept in
      Array.sort compare sorted;
      let half = sample_cap / 2 in
      for i = 0 to half - 1 do
        h.samples.(i) <- sorted.((2 * i) + 1)
      done;
      h.kept <- half;
      h.stride <- h.stride * 2
    end;
    h.samples.(h.kept) <- x;
    h.kept <- h.kept + 1;
    h.skip <- h.stride - 1
  end

(* one-shot conveniences *)
let incr_c t ?labels name = inc (counter t ?labels name)
let add_c t ?labels name n = add (counter t ?labels name) n
let observe_h t ?labels name x = observe (histogram t ?labels name) x
let set_g t ?labels name v = set (gauge t ?labels name) v

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type hist_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

type value = VCounter of int | VGauge of float | VHistogram of hist_stats

type sample = { name : string; labels : labels; value : value }

(* nearest-rank quantile over a sorted array: exact while the stream fits
   the sample buffer, an evenly decimated estimate afterwards *)
let quantile_of_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(Stdlib.min (n - 1) (Stdlib.max 0 (rank - 1)))

let hist_quantiles (h : histogram) =
  let sorted = Array.sub h.samples 0 h.kept in
  Array.sort compare sorted;
  ( quantile_of_sorted sorted 0.50,
    quantile_of_sorted sorted 0.95,
    quantile_of_sorted sorted 0.99 )

let value_of_cell = function
  | Counter r -> VCounter !r
  | Gauge r -> VGauge !r
  | Hist h ->
      if h.count = 0 then
        VHistogram
          { count = 0; sum = 0.; min = 0.; max = 0.; p50 = 0.; p95 = 0.;
            p99 = 0. }
      else
        let p50, p95, p99 = hist_quantiles h in
        VHistogram
          { count = h.count; sum = h.sum; min = h.minv; max = h.maxv;
            p50; p95; p99 }

let snapshot t : sample list =
  Hashtbl.fold
    (fun _ (c : cell) acc ->
      { name = c.name; labels = c.labels; value = value_of_cell c.v } :: acc)
    t.cells []
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

let find t ?(labels = []) name : value option =
  Option.map
    (fun c -> value_of_cell c.v)
    (Hashtbl.find_opt t.cells (name, canon labels))

let names t : string list =
  Hashtbl.fold (fun (n, _) _ acc -> n :: acc) t.cells []
  |> List.sort_uniq compare

(** Sum of a counter over all its label sets. *)
let sum_counters t name : int =
  Hashtbl.fold
    (fun (n, _) c acc ->
      match c.v with Counter r when n = name -> acc + !r | _ -> acc)
    t.cells 0

(** Zero every cell in place.  Handles resolved before the reset stay
    valid — they point at the same cells. *)
let reset t =
  Hashtbl.iter
    (fun _ c ->
      match c.v with
      | Counter r -> r := 0
      | Gauge r -> r := 0.
      | Hist h ->
          h.count <- 0;
          h.sum <- 0.;
          h.minv <- infinity;
          h.maxv <- neg_infinity;
          h.kept <- 0;
          h.stride <- 1;
          h.skip <- 0)
    t.cells
