(* Live run telemetry: one-line progress snapshots rendered from the
   default metrics registry.

   A watch is driven by deterministic progress ticks (one per execution /
   iteration / cell) and emits every [every] ticks plus a final line, so
   the *structure* of the output is reproducible even though the rates it
   prints are wall-clock.  Snapshots go to stderr by default — they never
   contaminate the machine-readable stdout/JSONL of the command being
   watched. *)

type t = {
  label : string;  (* e.g. "explore:tl-lock" *)
  every : int;  (* emit every [every] ticks *)
  counters : (string * string) list;  (* display key -> metric name *)
  out : out_channel;
  started : float;
  mutable ticks : int;
  mutable emitted : int;
}

let create ?(out = stderr) ?(every = 100) ~label counters =
  {
    label;
    every = max 1 every;
    counters;
    out;
    started = Unix.gettimeofday ();
    ticks = 0;
    emitted = 0;
  }

let render t =
  t.emitted <- t.emitted + 1;
  let elapsed = Unix.gettimeofday () -. t.started in
  let rate =
    if elapsed > 0. then float_of_int t.ticks /. elapsed else 0.
  in
  let m = Sink.metrics Sink.default in
  let cells =
    List.map
      (fun (key, metric) ->
        Printf.sprintf "%s=%d" key (Metrics.sum_counters m metric))
      t.counters
  in
  Printf.fprintf t.out "[watch %s] t=%.1fs ticks=%d (%.0f/s) %s\n%!"
    t.label elapsed t.ticks rate
    (String.concat " " cells)

(** One unit of progress; emits a snapshot line every [every] ticks. *)
let tick t =
  t.ticks <- t.ticks + 1;
  if t.ticks mod t.every = 0 then render t

(** The closing snapshot — always emitted, so even a short run yields at
    least one line. *)
let finish t = render t

let emitted t = t.emitted
