(** Named counters, gauges and histograms with labelled cardinality.

    A registry maps (metric name, canonical label set) to a mutable cell.
    Hot paths resolve a handle once and pay one mutation per event; the
    one-shot [*_c]/[*_h]/[*_g] conveniences look the cell up each time.

    Metric-name conventions used across the workbench (documented in
    docs/OBSERVABILITY.md): counters end in [_total]; histograms carry a
    unit suffix ([_ns], [_steps], ...); labels are low-cardinality
    ([tm], [pid], [prim], [checker], [verdict], [reason], ...). *)

type labels = (string * string) list
(** Label order is irrelevant: labels are canonicalized by key. *)

val canon : labels -> labels
(** Sort labels by key (the canonical time-series identity). *)

type t
(** A registry. *)

val create : unit -> t

(** {1 Handles — resolve once, mutate cheaply} *)

type counter
type gauge
type histogram

val counter : t -> ?labels:labels -> string -> counter
(** @raise Invalid_argument if the name is registered with another kind. *)

val gauge : t -> ?labels:labels -> string -> gauge
val histogram : t -> ?labels:labels -> string -> histogram

val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : histogram -> float -> unit

(** {1 One-shot conveniences} *)

val incr_c : t -> ?labels:labels -> string -> unit
val add_c : t -> ?labels:labels -> string -> int -> unit
val observe_h : t -> ?labels:labels -> string -> float -> unit
val set_g : t -> ?labels:labels -> string -> float -> unit

(** {1 Snapshots} *)

type hist_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}
(** [min]/[max]/quantiles are 0 when [count] is 0.  Quantiles are
    nearest-rank estimates over a bounded, deterministically decimated
    sample buffer: exact for streams of up to 512 observations, an evenly
    spaced sketch beyond that.  No randomness — identical observation
    streams yield identical quantiles. *)

type value = VCounter of int | VGauge of float | VHistogram of hist_stats

type sample = { name : string; labels : labels; value : value }

val snapshot : t -> sample list
(** All cells, sorted by (name, labels) — a deterministic order. *)

val find : t -> ?labels:labels -> string -> value option
val names : t -> string list

val sum_counters : t -> string -> int
(** Sum of a counter over all its label sets. *)

val reset : t -> unit
(** Zero every cell in place; previously resolved handles stay valid. *)
