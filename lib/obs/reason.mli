(** Stable machine-readable exit reasons.

    Every nonzero CLI exit prints exactly one JSON reason line on stderr:
    [{"schema":1,"type":"reason","code":"PCL-Exxx","message":...,...}].
    Commands raise {!Exit_reason} via {!exit_with}; the CLI toplevel
    catches it, calls {!emit} once and exits 1.  Codes are append-only
    identifiers; the {!catalogue} is the source of truth for the docs
    table and the exhaustiveness test. *)

type t =
  | Internal_error of { exn : string }  (** PCL-E000 *)
  | Cli_error of { rc : int }  (** PCL-E001 *)
  | Invalid_input of { msg : string }  (** PCL-E002 *)
  | No_consistency of { failing : int; executions : int; tms : string list }
      (** PCL-E101 *)
  | Contract_violation of {
      violations : int;
      runs : int;
      kinds : (string * int) list;
    }  (** PCL-E102 *)
  | Unexpected_findings of {
      unexpected : int;
      total : int;
      lints : string list;
    }  (** PCL-E103 *)
  | Closure_violation of {
      violations : int;
      cells : int;
      witnesses : string list;
    }  (** PCL-E104 *)
  | Violation_trace of { trace : string; verdicts : int; sources : string list }
      (** PCL-E105 *)
  | Stall of {
      pid : int;
      step : int option;
      obj : string option;
      prim : string option;
    }  (** PCL-E106 *)
  | Cost_expectation of {
      tm : string;
      workload : string;
      violated : string list;
    }  (** PCL-E107 *)
  | Soak_stall of {
      tm : string;
      pid : int;
      step : int option;
      obj : string option;
      prim : string option;
      txns : int;
      target : int;
    }  (** PCL-E108 *)
  | Progress_violation of {
      tm : string option;
      pass : string;
      pid : int option;
      txn : int option;
      witness_step : int option;
      unexpected : int;
    }  (** PCL-E109 *)
  | Conform_failure of {
      failed : string list;
      timeouts : string list;
      scenarios : int;
      cells : int;
      quarantined : int;
    }  (** PCL-E110 *)

exception Exit_reason of t

val code : t -> string
(** The stable ["PCL-Exxx"] identifier. *)

val catalogue : (string * string) list
(** [code -> one-line meaning], sorted by code; covers every constructor. *)

val message : t -> string
val payload : t -> (string * Obs_json.t) list
val to_json : t -> Obs_json.t

val emit : t -> unit
(** Print the reason line on stderr (flushing stdout first) and set the
    {!emitted} flag. *)

val emitted : unit -> bool
(** Whether {!emit} ran in this process — the toplevel's "exactly one
    line" guard. *)

val exit_with : t -> 'a
(** [raise (Exit_reason r)] — the one way commands signal failure. *)
