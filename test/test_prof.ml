(* The soak observatory's instruments: phase-profile aggregation (the
   call-forest rebuild and its merge law), the collapsed-stack and
   Chrome exports, watch tick-rate determinism, GC metering shape, the
   runtime tick hooks the soak rides on, and the segmented soak driver
   itself (completion, stall, determinism). *)

open Core

(* ------------------------------------------------------------------ *)
(* a deterministic tracer: constant wall clock, manual step counter *)

let fake_tracer () =
  let step = ref 0 in
  let tr = Span.create ~clock:(fun () -> 0.0) ~steps:(fun () -> !step) () in
  (tr, step)

(* the reference workload:
     run
       setup        (2 steps)
       drive        (commit: 3 steps, then 1 step of its own)
       drive        (commit: 3 steps, then 2 steps of its own)   *)
let drive_reference tr step =
  Span.with_ tr "run" (fun () ->
      Span.with_ tr "setup" (fun () -> step := !step + 2);
      Span.with_ tr "drive" (fun () ->
          Span.with_ tr "commit" (fun () -> step := !step + 3);
          step := !step + 1);
      Span.with_ tr "drive" (fun () ->
          Span.with_ tr "commit" (fun () -> step := !step + 3);
          step := !step + 2))

let test_golden_collapsed () =
  let tr, step = fake_tracer () in
  drive_reference tr step;
  let prof = Prof.of_spans (Span.spans tr) in
  (* self-steps: run = 11 - (2+4+5) = 0; drive = (4-3) + (5-3) = 3;
     commit = 3 + 3 = 6; setup = 2.  Lines sort lexicographically and
     sum to the 11 steps of the whole run. *)
  Alcotest.(check string)
    "collapsed stacks (self steps)"
    "run 0\nrun;drive 3\nrun;drive;commit 6\nrun;setup 2\n"
    (Prof.to_collapsed ~metric:Prof.Steps prof);
  Alcotest.(check string)
    "collapsed stacks (calls)"
    "run 1\nrun;drive 2\nrun;drive;commit 2\nrun;setup 1\n"
    (Prof.to_collapsed ~metric:Prof.Calls prof);
  (* the node table agrees: totals are inclusive *)
  let find p =
    match List.find_opt (fun n -> n.Prof.path = p) (Prof.nodes prof) with
    | Some n -> n
    | None -> Alcotest.failf "no node %s" (String.concat ";" p)
  in
  let drive = find [ "run"; "drive" ] in
  Alcotest.(check int) "drive calls" 2 drive.Prof.count;
  Alcotest.(check int) "drive total steps" 9 drive.Prof.total_steps;
  Alcotest.(check int) "drive self steps" 3 drive.Prof.self_steps;
  Alcotest.(check int) "run total steps" 11 (find [ "run" ]).Prof.total_steps

let test_chrome_export () =
  let tr, step = fake_tracer () in
  drive_reference tr step;
  let spans = Span.spans tr in
  (match Prof.spans_to_chrome spans with
  | Obs_json.Obj [ ("traceEvents", Obs_json.List evs); _ ] ->
      Alcotest.(check int) "one event per span" (List.length spans)
        (List.length evs)
  | _ -> Alcotest.fail "unexpected chrome trace shape");
  let s = Obs_json.to_string (Prof.spans_to_chrome spans) in
  let contains needle =
    let n = String.length needle and l = String.length s in
    let rec mem i = i + n <= l && (String.sub s i n = needle || mem (i + 1)) in
    mem 0
  in
  Alcotest.(check bool) "complete events" true (contains "\"ph\":\"X\"");
  Alcotest.(check bool) "step timestamps" true (contains "\"ts\":")

(* ------------------------------------------------------------------ *)
(* the merge law, property-checked: profiling the concatenation of two
   completed forests equals merging their separate profiles *)

type shape = Node of string * shape list

let rec exec tr step (Node (name, kids)) =
  Span.with_ tr name (fun () ->
      incr step;
      List.iter (exec tr step) kids)

let shape_gen =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c" ] in
  sized_size (int_bound 8) @@ fix (fun self n ->
      if n = 0 then map (fun nm -> Node (nm, [])) name
      else
        map2
          (fun nm kids -> Node (nm, kids))
          name
          (list_size (int_bound 3) (self (n / 3))))

let forest_arb =
  QCheck.make
    ~print:(fun f ->
      let rec pp (Node (n, ks)) =
        n ^ if ks = [] then "" else "(" ^ String.concat "," (List.map pp ks) ^ ")"
      in
      String.concat " " (List.map pp f))
    QCheck.Gen.(list_size (int_bound 4) shape_gen)

let spans_of_forest f =
  let tr, step = fake_tracer () in
  List.iter (exec tr step) f;
  Span.spans tr

let merge_law =
  QCheck.Test.make ~name:"prof merge = profile of concatenation" ~count:200
    (QCheck.pair forest_arb forest_arb)
    (fun (fa, fb) ->
      let a = spans_of_forest fa and b = spans_of_forest fb in
      let merged = Prof.merge (Prof.of_spans a) (Prof.of_spans b) in
      let concat = Prof.of_spans (a @ b) in
      Prof.to_collapsed ~metric:Prof.Steps merged
      = Prof.to_collapsed ~metric:Prof.Steps concat
      && Prof.to_collapsed ~metric:Prof.Calls merged
         = Prof.to_collapsed ~metric:Prof.Calls concat
      (* and incremental folding (the soak's path) agrees too *)
      &&
      let inc = Prof.create () in
      Prof.add_spans inc a;
      Prof.add_spans inc b;
      Prof.to_collapsed ~metric:Prof.Calls inc
      = Prof.to_collapsed ~metric:Prof.Calls concat)

(* ------------------------------------------------------------------ *)
(* watch: snapshot cadence is a pure function of the tick count *)

let test_watch_tick_rate () =
  let out = open_out "/dev/null" in
  let run () =
    let w = Watch.create ~out ~every:10 ~label:"soak:test" [] in
    for _ = 1 to 95 do
      Watch.tick w
    done;
    let mid = Watch.emitted w in
    Watch.finish w;
    (mid, Watch.emitted w)
  in
  let a = run () and b = run () in
  close_out out;
  Alcotest.(check (pair int int)) "95 ticks at every=10" (9, 10) a;
  Alcotest.(check (pair int int)) "same cadence on re-run" a b

(* ------------------------------------------------------------------ *)
(* gcstat: sample retention and the perf record's shape *)

let test_gcstat () =
  let g = Gcstat.create ~cap:2 () in
  ignore (Sys.opaque_identity (Array.make 4096 0));
  let s1 = Gcstat.sample g ~tick:1 ~steps:100 ~txns:10 in
  ignore (Gcstat.sample g ~tick:2 ~steps:200 ~txns:20);
  ignore (Gcstat.sample g ~tick:3 ~steps:300 ~txns:30);
  Alcotest.(check bool) "allocation observed" true (s1.Gcstat.alloc_words > 0.);
  (* the cap keeps the oldest samples; later ones still measure *)
  (match Gcstat.samples g with
  | [ a; b ] ->
      Alcotest.(check int) "first tick" 1 a.Gcstat.tick;
      Alcotest.(check int) "second tick" 2 b.Gcstat.tick;
      Alcotest.(check bool) "cumulative alloc" true
        (b.Gcstat.alloc_words >= a.Gcstat.alloc_words)
  | ss -> Alcotest.failf "expected 2 retained samples, got %d" (List.length ss));
  match Gcstat.report g ~wall_ns:1_000_000 ~steps:100 ~txns:10 with
  | Obs_json.Obj
      (("schema", Obs_json.Int 1)
      :: ("type", Obs_json.String "perf")
      :: ("wall_ns", Obs_json.Int 1_000_000)
      :: ("steps", Obs_json.Int 100)
      :: ("txns", Obs_json.Int 10)
      :: rest) ->
      Alcotest.(check bool) "per-step rates present" true
        (List.mem_assoc "ns_per_step" rest
        && List.mem_assoc "words_per_step" rest
        && List.mem_assoc "samples" rest)
  | j ->
      Alcotest.failf "perf record shape: %s" (Obs_json.to_string j)

(* ------------------------------------------------------------------ *)
(* runtime tick hooks: deterministic step-count boundaries *)

let counter_setup steps1 steps2 : Sim.setup =
 fun mem _recorder ->
  let o1 = Memory.alloc mem ~name:"c1" (Value.int 0) in
  let o2 = Memory.alloc mem ~name:"c2" (Value.int 0) in
  [
    (1, fun () -> for _ = 1 to steps1 do ignore (Proc.fetch_add o1 1) done);
    (2, fun () -> for _ = 1 to steps2 do ignore (Proc.fetch_add o2 1) done);
  ]

let test_sim_tick_hook () =
  let run () =
    let ticks = ref [] in
    let c = Sim.start (counter_setup 5 3) in
    Sim.on_tick c (fun n -> ticks := n :: !ticks);
    let progressed = ref true in
    while !progressed do
      progressed := false;
      List.iter
        (fun pid -> if Sim.step c pid then progressed := true)
        [ 1; 2 ]
    done;
    (List.rev !ticks, Sim.steps_taken c)
  in
  let ticks, total = run () in
  Alcotest.(check int) "all steps executed" 8 total;
  (* one tick per single-step atom, cumulative and strictly increasing *)
  Alcotest.(check (list int)) "tick boundaries"
    [ 1; 2; 3; 4; 5; 6; 7; 8 ] ticks;
  let ticks2, _ = run () in
  Alcotest.(check (list int)) "deterministic on re-run" ticks ticks2

let test_schedule_session_steps () =
  let r =
    Sim.replay (counter_setup 5 3)
      [ Schedule.Steps (1, 2); Schedule.Until_done 2; Schedule.Until_done 1 ]
  in
  (* session accounting agrees with the log the replay produced *)
  Alcotest.(check int) "log length" 8 (List.length r.Sim.log)

(* ------------------------------------------------------------------ *)
(* the soak driver: completion, determinism, stall attribution *)

let soak_cfg =
  {
    Soak.default with
    Soak.txns = 40;
    n_procs = 2;
    seed = 42;
    segment_txns = 5;
    budget = 50_000;
    tick_steps = 50;
  }

let test_soak_completes () =
  let impl = Registry.find_exn "tl2-clock" in
  let ticks = ref 0 in
  let o = Soak.run ~on_tick:(fun _ -> incr ticks) impl soak_cfg in
  Alcotest.(check bool) "reached the target" true
    (o.Soak.progress.Soak.txns_done >= soak_cfg.Soak.txns);
  Alcotest.(check (option (of_pp Fmt.nop))) "no stall" None o.Soak.stall;
  Alcotest.(check bool) "segments ran" true (o.Soak.progress.Soak.segments > 0);
  Alcotest.(check bool) "ticks fired" true (!ticks > 0);
  (* fixed config, fixed outcome — the soak line's determinism *)
  let o2 = Soak.run impl soak_cfg in
  Alcotest.(check bool) "deterministic outcome" true
    (o.Soak.progress = o2.Soak.progress)

let test_soak_stall () =
  let impl = Registry.find_exn "tl-lock" in
  let o = Soak.run impl { soak_cfg with Soak.budget = 20 } in
  match o.Soak.stall with
  | None -> Alcotest.fail "starved budget must wedge"
  | Some s ->
      Alcotest.(check bool) "wedged pid named" true (s.Soak.pid >= 1);
      Alcotest.(check bool) "short of the target" true
        (o.Soak.progress.Soak.txns_done < soak_cfg.Soak.txns)

let () =
  Alcotest.run "prof"
    [
      ( "prof",
        [
          Alcotest.test_case "golden collapsed stack" `Quick
            test_golden_collapsed;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
          QCheck_alcotest.to_alcotest merge_law;
        ] );
      ( "watch",
        [ Alcotest.test_case "tick rate" `Quick test_watch_tick_rate ] );
      ( "gcstat", [ Alcotest.test_case "samples and report" `Quick test_gcstat ] );
      ( "ticks",
        [
          Alcotest.test_case "sim tick hook" `Quick test_sim_tick_hook;
          Alcotest.test_case "session step accounting" `Quick
            test_schedule_session_steps;
        ] );
      ( "soak",
        [
          Alcotest.test_case "completes deterministically" `Quick
            test_soak_completes;
          Alcotest.test_case "stalls under a starved budget" `Quick
            test_soak_stall;
        ] );
    ]
