(* Tests for the effect-based deterministic scheduler, schedules, replay
   and the interleaving explorer (tm_runtime). *)

open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a process that does n writes to its own object *)
let writer _mem ~oid ~n () =
  for i = 1 to n do
    Proc.write oid (Value.int i)
  done

let mk_world n_per_proc =
  let mem = Memory.create () in
  let sched = Scheduler.create mem in
  let oids =
    List.map
      (fun pid -> (pid, Memory.alloc mem ~name:(Printf.sprintf "o%d" pid) (Value.int 0)))
      [ 1; 2 ]
  in
  List.iter
    (fun (pid, oid) -> Scheduler.spawn sched ~pid (writer mem ~oid ~n:n_per_proc))
    oids;
  (mem, sched)

let scheduler_tests =
  [
    Alcotest.test_case "step advances one primitive" `Quick (fun () ->
        let mem, sched = mk_world 3 in
        check "stepped" true (Scheduler.step sched 1 = Scheduler.Stepped);
        check_int "one step" 1 (Memory.step_count mem);
        check "not finished" false (Scheduler.finished sched 1));
    Alcotest.test_case "run to completion" `Quick (fun () ->
        let mem, sched = mk_world 3 in
        check_int "three steps" 3 (Scheduler.run_steps sched 1 10);
        check "finished" true (Scheduler.finished sched 1);
        check "further steps are no-ops" true
          (Scheduler.step sched 1 = Scheduler.Already_finished);
        check_int "count stable" 3 (Memory.step_count mem));
    Alcotest.test_case "interleaving under control" `Quick (fun () ->
        let mem, sched = mk_world 2 in
        ignore (Scheduler.run_steps sched 1 1);
        ignore (Scheduler.run_steps sched 2 2);
        ignore (Scheduler.run_steps sched 1 1);
        let pids =
          List.map (fun (e : Access_log.entry) -> e.Access_log.pid)
            (Access_log.entries (Memory.log mem))
        in
        check "exact order" true (pids = [ 1; 2; 2; 1 ]));
    Alcotest.test_case "duplicate spawn rejected" `Quick (fun () ->
        let _, sched = mk_world 1 in
        check "raises" true
          (try
             Scheduler.spawn sched ~pid:1 (fun () -> ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "unknown pid rejected" `Quick (fun () ->
        let _, sched = mk_world 1 in
        check "raises" true
          (try
             ignore (Scheduler.step sched 99);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "zero-step process finishes immediately" `Quick
      (fun () ->
        let mem = Memory.create () in
        let sched = Scheduler.create mem in
        Scheduler.spawn sched ~pid:1 (fun () -> ());
        check "already finished on first step" true
          (Scheduler.step sched 1 = Scheduler.Already_finished);
        check "finished" true (Scheduler.finished sched 1));
    Alcotest.test_case "crash is captured, not raised" `Quick (fun () ->
        let mem = Memory.create () in
        let sched = Scheduler.create mem in
        let oid = Memory.alloc mem ~name:"o" (Value.int 0) in
        Scheduler.spawn sched ~pid:1 (fun () ->
            ignore (Proc.read oid);
            failwith "boom");
        ignore (Scheduler.step sched 1);
        check "crashed" true
          (match Scheduler.crashed sched 1 with
          | Some (Failure msg) -> msg = "boom"
          | _ -> false));
    Alcotest.test_case "run_solo terminates and reports budget" `Quick
      (fun () ->
        let mem = Memory.create () in
        let sched = Scheduler.create mem in
        let oid = Memory.alloc mem ~name:"o" (Value.int 0) in
        Scheduler.spawn sched ~pid:1 (fun () ->
            (* spin forever *)
            while true do
              ignore (Proc.read oid)
            done);
        check "out of budget" true
          (Scheduler.run_solo sched 1 ~budget:50 = Scheduler.Out_of_budget);
        Scheduler.spawn sched ~pid:2 (writer mem ~oid ~n:4);
        check "done 4" true
          (Scheduler.run_solo sched 2 ~budget:50 = Scheduler.Done 4));
  ]

(* Sim-based tests use a trivial setup with two independent counters *)
let counter_setup steps1 steps2 : Sim.setup =
 fun mem _recorder ->
  let o1 = Memory.alloc mem ~name:"c1" (Value.int 0) in
  let o2 = Memory.alloc mem ~name:"c2" (Value.int 0) in
  [
    (1, fun () -> for _ = 1 to steps1 do ignore (Proc.fetch_add o1 1) done);
    (2, fun () -> for _ = 1 to steps2 do ignore (Proc.fetch_add o2 1) done);
  ]

let sim_tests =
  [
    Alcotest.test_case "replay is deterministic" `Quick (fun () ->
        let sched = [ Schedule.Steps (1, 2); Schedule.Steps (2, 3);
                      Schedule.Until_done 1 ] in
        let r1 = Sim.replay (counter_setup 5 3) sched in
        let r2 = Sim.replay (counter_setup 5 3) sched in
        let sig_of (r : Sim.result) =
          List.map
            (fun (e : Access_log.entry) ->
              (e.Access_log.pid, Oid.to_int e.Access_log.oid,
               Value.to_string e.Access_log.response))
            r.Sim.log
        in
        check "identical logs" true (sig_of r1 = sig_of r2));
    Alcotest.test_case "prefix replay yields prefix log" `Quick (fun () ->
        let short = Sim.replay (counter_setup 5 3) [ Schedule.Steps (1, 2) ] in
        let long =
          Sim.replay (counter_setup 5 3)
            [ Schedule.Steps (1, 2); Schedule.Steps (2, 1) ]
        in
        let sig_of (r : Sim.result) =
          List.map
            (fun (e : Access_log.entry) ->
              (e.Access_log.pid, Value.to_string e.Access_log.response))
            r.Sim.log
        in
        let s = sig_of short and l = sig_of long in
        check_int "lengths" 2 (List.length s);
        check "prefix" true
          (List.filteri (fun i _ -> i < 2) l = s));
    Alcotest.test_case "schedule report counts steps" `Quick (fun () ->
        let r =
          Sim.replay (counter_setup 5 3)
            [ Schedule.Steps (1, 2); Schedule.Until_done 2;
              Schedule.Until_done 1 ]
        in
        check "completed" true (r.Sim.report.Schedule.stop = Schedule.Completed);
        check "per atom" true
          (r.Sim.report.Schedule.steps_per_atom = [ 2; 3; 3 ]);
        check_int "steps of p1" 5 (r.Sim.steps_of 1));
    Alcotest.test_case "budget exhaustion reported with pid" `Quick (fun () ->
        let spin : Sim.setup =
         fun mem _ ->
          let o = Memory.alloc mem ~name:"o" (Value.int 0) in
          [ (1, fun () -> while true do ignore (Proc.read o) done) ]
        in
        let r = Sim.replay ~budget:30 spin [ Schedule.Until_done 1 ] in
        check "exhausted by p1" true
          (match r.Sim.report.Schedule.stop with
          | Schedule.Budget_exhausted { Schedule.stalled_pid = 1; _ } -> true
          | _ -> false));
    Alcotest.test_case "solo_length measures a segment" `Quick (fun () ->
        check "5 steps" true
          (Sim.solo_length (counter_setup 5 3) ~prefix:[] 1 = Some 5);
        check "after prefix" true
          (Sim.solo_length (counter_setup 5 3)
             ~prefix:[ Schedule.Steps (1, 2) ] 1
          = Some 3));
  ]

let explorer_tests =
  [
    Alcotest.test_case "enumerates all interleavings" `Quick (fun () ->
        (* two independent processes with 3 and 2 steps: C(5,3) = 10 *)
        let stats =
          Explorer.explore (counter_setup 3 2) ~pids:[ 1; 2 ]
            ~on_execution:(fun _ -> ())
        in
        check_int "executions" 10 stats.Explorer.executions;
        check "complete" false stats.Explorer.truncated);
    Alcotest.test_case "for_all over interleavings" `Quick (fun () ->
        let r =
          Explorer.for_all (counter_setup 2 2) ~pids:[ 1; 2 ] (fun r ->
              (* both counters always end at their target *)
              List.length r.Sim.log = 4)
        in
        check "holds" true (Result.is_ok r));
    Alcotest.test_case "exists finds a witness" `Quick (fun () ->
        let w =
          Explorer.exists (counter_setup 2 2) ~pids:[ 1; 2 ] (fun r ->
              (* some interleaving starts with p2 *)
              match r.Sim.log with
              | e :: _ -> e.Access_log.pid = 2
              | [] -> false)
        in
        check "witness" true (w <> None));
    Alcotest.test_case "counterexample is returned" `Quick (fun () ->
        let r =
          Explorer.for_all (counter_setup 2 2) ~pids:[ 1; 2 ] (fun r ->
              match r.Sim.log with
              | e :: _ -> e.Access_log.pid = 1
              | [] -> false)
        in
        check "fails" true (Result.is_error r));
    Alcotest.test_case "truncation respects bounds" `Quick (fun () ->
        let stats =
          Explorer.explore ~max_executions:3 (counter_setup 3 3)
            ~pids:[ 1; 2 ] ~on_execution:(fun _ -> ())
        in
        check "truncated" true stats.Explorer.truncated;
        check "capped" true (stats.Explorer.executions <= 3));
  ]

let () =
  Alcotest.run "runtime"
    [
      ("scheduler", scheduler_tests);
      ("sim", sim_tests);
      ("explorer", explorer_tests);
    ]
