(* Behavioural tests for the five TM implementations: common contract
   tests for every TM, then per-TM tests pinning down the specific
   mechanism (locks, locators + enemy aborts, snapshots + helping,
   process-local views, optimistic per-item CAS). *)

open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let x = Item.v "x"
let y = Item.v "y"

let spec tid pid reads writes =
  { Static_txn.tid = Tid.v tid; pid; reads;
    writes = List.map (fun (i, v) -> (i, Value.int v)) writes }

let setup impl specs outcomes : Sim.setup =
 fun mem recorder ->
  let handle =
    Txn_api.instantiate impl mem recorder ~items:(Static_txn.items_of specs)
  in
  List.map
    (fun s -> (s.Static_txn.pid, Static_txn.program handle s ~outcomes))
    specs

let run ?(budget = 3_000) impl specs schedule =
  let outcomes = Hashtbl.create 8 in
  let r = Sim.replay ~budget (setup impl specs outcomes) schedule in
  (r, outcomes)

let read_of outcomes tid item =
  Option.bind (Hashtbl.find_opt outcomes (Tid.v tid)) (fun o ->
      Static_txn.read_value o item)

let status outcomes tid =
  match Hashtbl.find_opt outcomes (Tid.v tid) with
  | Some o -> o.Static_txn.status
  | None -> Static_txn.Unstarted

(* ------------------------------------------------------------------ *)
(* the common contract, instantiated for every TM *)

let common_tests impl =
  let (module M : Tm_intf.S) = impl in
  [
    Alcotest.test_case (M.name ^ ": solo txn commits") `Quick (fun () ->
        let specs = [ spec 1 1 [ x ] [ (y, 1) ] ] in
        let r, outcomes = run impl specs [ Schedule.Until_done 1 ] in
        check "committed" true (status outcomes 1 = Static_txn.Committed);
        check "reads initial" true (read_of outcomes 1 x = Some (Value.int 0));
        check "completed" true (r.Sim.report.Schedule.stop = Schedule.Completed));
    Alcotest.test_case (M.name ^ ": read own write") `Quick (fun () ->
        (* write then read the same item inside one transaction *)
        let outcomes = Hashtbl.create 4 in
        let got = ref None in
        let setup mem recorder =
          let handle = Txn_api.instantiate impl mem recorder ~items:[ x ] in
          [ (1,
             fun () ->
               let txn = handle.Txn_api.begin_txn ~pid:1 ~tid:(Tid.v 1) in
               (match txn.Txn_api.write x (Value.int 42) with
               | Ok () -> got := Result.to_option (txn.Txn_api.read x)
               | Error () -> ());
               ignore (txn.Txn_api.try_commit ())) ]
        in
        ignore (Sim.replay ~budget:3_000 setup [ Schedule.Until_done 1 ]);
        ignore outcomes;
        check "sees own write" true (!got = Some (Value.int 42)));
    Alcotest.test_case (M.name ^ ": solo read-modify-write") `Quick (fun () ->
        let specs = [ spec 1 1 [ x ] [ (x, 5) ] ] in
        let _, outcomes = run impl specs [ Schedule.Until_done 1 ] in
        check "committed" true (status outcomes 1 = Static_txn.Committed));
    Alcotest.test_case (M.name ^ ": histories are well-formed") `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ x ] [ (x, 2) ] ]
        in
        let r, _ =
          run impl specs
            [ Schedule.Steps (1, 4); Schedule.Until_done 2;
              Schedule.Until_done 1 ]
        in
        match History.well_formed r.Sim.history with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case (M.name ^ ": sequential committed history is legal")
      `Quick (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [ x ] [ (y, 2) ] ]
        in
        let r, outcomes =
          run impl specs [ Schedule.Until_done 1; Schedule.Until_done 2 ]
        in
        check "both committed" true
          (status outcomes 1 = Static_txn.Committed
          && status outcomes 2 = Static_txn.Committed);
        (* pram is the exception: it never propagates across processes *)
        if M.name <> "pram-local" then
          check "T2 sees T1" true (read_of outcomes 2 x = Some (Value.int 1));
        check "well-formed" true (Result.is_ok (History.well_formed r.Sim.history)));
  ]

(* ------------------------------------------------------------------ *)

let tl_tests =
  let impl = (module Tl_tm : Tm_intf.S) in
  [
    Alcotest.test_case "conflicting racer aborts on validation" `Quick
      (fun () ->
        (* T1 reads x early; T2 commits a write to x; T1's commit must
           fail validation *)
        let specs =
          [ spec 1 1 [ x ] [ (y, 1) ]; spec 2 2 [] [ (x, 9) ] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (1, 1) (* T1 reads x *);
              Schedule.Until_done 2; Schedule.Until_done 1 ]
        in
        check "T2 committed" true (status outcomes 2 = Static_txn.Committed);
        check "T1 aborted" true (status outcomes 1 = Static_txn.Aborted));
    Alcotest.test_case "locks are all released at the end" `Quick (fun () ->
        (* behavioural check: after T1 (commits or aborts) and T2 finish,
           a third transaction over the same items must be able to lock
           and commit solo — impossible if any lock leaked *)
        let specs =
          [ spec 1 1 [ x ] [ (x, 1); (y, 1) ]; spec 2 2 [ x ] [ (x, 2) ];
            spec 3 3 [ x; y ] [ (x, 7); (y, 7) ] ]
        in
        let r, outcomes =
          run impl specs
            [ Schedule.Steps (1, 1); Schedule.Until_done 2;
              Schedule.Until_done 1; Schedule.Until_done 3 ]
        in
        check "completed" true (r.Sim.report.Schedule.stop = Schedule.Completed);
        check "T3 commits over the same items" true
          (status outcomes 3 = Static_txn.Committed));
    Alcotest.test_case "suspended lock holder blocks a conflicting commit"
      `Quick (fun () ->
        (* run T2 up to the point it holds x's lock, then let T1 try *)
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [] [ (x, 2); (y, 2) ] ]
        in
        let solo, _ = run impl specs [ Schedule.Until_done 2 ] in
        let n = solo.Sim.steps_of 2 in
        let blocked = ref false in
        (* find some suspension point where T1 cannot finish *)
        for k = 1 to n - 1 do
          let r, _ =
            run ~budget:300 impl specs
              [ Schedule.Steps (2, k); Schedule.Until_done 1 ]
          in
          match r.Sim.report.Schedule.stop with
          | Schedule.Budget_exhausted { Schedule.stalled_pid = 1; _ } ->
              blocked := true
          | _ -> ()
        done;
        check "blocking observed" true !blocked);
    Alcotest.test_case "disjoint txns never contend (strict DAP)" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ y ] [ (y, 2) ] ]
        in
        let r, _ =
          run impl specs [ Schedule.Until_done 1; Schedule.Until_done 2 ]
        in
        check "strict DAP" true
          (Strict_dap.holds ~data_sets:(Static_txn.data_sets specs) r.Sim.log));
    Alcotest.test_case "all interleavings strictly serializable (bounded)"
      `Quick (fun () ->
        (* short conflicting txns; schedules that suspend a lock holder
           forever are cut off by max_steps and simply not completed *)
        let specs =
          [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ x ] [ (x, 2) ] ]
        in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all ~max_steps:40 ~max_nodes:60_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Spec.sat (Strict_serializability.check r.Sim.history))
        in
        check "holds" true (Result.is_ok r));
  ]

let pram_tests =
  let impl = (module Pram_tm : Tm_intf.S) in
  [
    Alcotest.test_case "takes zero shared steps" `Quick (fun () ->
        let specs = [ spec 1 1 [ x ] [ (x, 1) ] ] in
        let r, _ = run impl specs [ Schedule.Until_done 1 ] in
        check_int "no steps" 0 (List.length r.Sim.log));
    Alcotest.test_case "own process sees its committed writes" `Quick
      (fun () ->
        (* one process running two transactions back to back *)
        let got = ref None in
        let setup mem recorder =
          let handle = Txn_api.instantiate impl mem recorder ~items:[ x ] in
          [ (1,
             fun () ->
               let t1 = handle.Txn_api.begin_txn ~pid:1 ~tid:(Tid.v 1) in
               ignore (t1.Txn_api.write x (Value.int 7));
               ignore (t1.Txn_api.try_commit ());
               let t2 = handle.Txn_api.begin_txn ~pid:1 ~tid:(Tid.v 2) in
               got := Result.to_option (t2.Txn_api.read x);
               ignore (t2.Txn_api.try_commit ())) ]
        in
        ignore (Sim.replay ~budget:100 setup [ Schedule.Until_done 1 ]);
        check "sees 7" true (!got = Some (Value.int 7)));
    Alcotest.test_case "other processes never see writes" `Quick (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 7) ]; spec 2 2 [ x ] [] ]
        in
        let _, outcomes =
          run impl specs [ Schedule.Until_done 1; Schedule.Until_done 2 ]
        in
        check "still 0" true (read_of outcomes 2 x = Some (Value.int 0)));
    Alcotest.test_case "aborted txn's writes invisible to own process" `Quick
      (fun () ->
        let outcomes = Hashtbl.create 4 in
        let got = ref None in
        let setup mem recorder =
          let handle = Txn_api.instantiate impl mem recorder ~items:[ x ] in
          [ (1,
             fun () ->
               let t1 = handle.Txn_api.begin_txn ~pid:1 ~tid:(Tid.v 1) in
               ignore (t1.Txn_api.write x (Value.int 9));
               t1.Txn_api.abort ();
               let t2 = handle.Txn_api.begin_txn ~pid:1 ~tid:(Tid.v 2) in
               got := Result.to_option (t2.Txn_api.read x);
               ignore (t2.Txn_api.try_commit ())) ]
        in
        ignore (Sim.replay ~budget:100 setup [ Schedule.Until_done 1 ]);
        ignore outcomes;
        check "rolled back" true (!got = Some (Value.int 0)));
    Alcotest.test_case "every interleaving is PRAM consistent" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ x ] [ (x, 2) ] ]
        in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Spec.sat (Pram.check r.Sim.history))
        in
        check "holds" true (Result.is_ok r));
  ]

let dstm_tests =
  let impl = (module Dstm_tm : Tm_intf.S) in
  [
    Alcotest.test_case "reader of an active owner sees the old value" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 9) ]; spec 2 2 [ x ] [] ]
        in
        (* suspend T1 after it acquired x but before commit *)
        let solo, _ = run impl specs [ Schedule.Until_done 1 ] in
        let n = solo.Sim.steps_of 1 in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (1, n - 1); Schedule.Until_done 2 ]
        in
        check "old value" true (read_of outcomes 2 x = Some (Value.int 0)));
    Alcotest.test_case "writer aborts an active enemy owner" `Quick (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [] [ (x, 2) ] ]
        in
        let solo, _ = run impl specs [ Schedule.Until_done 1 ] in
        let n = solo.Sim.steps_of 1 in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (1, n - 1); Schedule.Until_done 2;
              Schedule.Until_done 1 ]
        in
        check "T2 committed" true (status outcomes 2 = Static_txn.Committed);
        check "T1 aborted by enemy" true
          (status outcomes 1 = Static_txn.Aborted));
    Alcotest.test_case "chain contention on the status word" `Quick (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [] [ (x, 2); (y, 2) ];
            spec 3 3 [] [ (y, 3) ] ]
        in
        let solo, _ = run impl specs [ Schedule.Until_done 2 ] in
        let n = solo.Sim.steps_of 2 in
        let r, _ =
          run impl specs
            [ Schedule.Steps (2, n - 1); Schedule.Until_done 1;
              Schedule.Until_done 3 ]
        in
        let data_sets = Static_txn.data_sets specs in
        check "strict DAP violated" false (Strict_dap.holds ~data_sets r.Sim.log);
        check "graph DAP survives" true (Graph_dap.holds ~data_sets r.Sim.log));
    Alcotest.test_case "all interleavings strictly serializable" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ x ] [ (x, 2) ] ]
        in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all ~max_nodes:200_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Spec.sat (Strict_serializability.check r.Sim.history))
        in
        check "holds" true (Result.is_ok r));
    Alcotest.test_case "all interleavings obstruction-free" `Quick (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ x ] [ (x, 2) ] ]
        in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all ~max_nodes:200_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Obstruction_freedom.holds r.Sim.history r.Sim.log)
        in
        check "holds" true (Result.is_ok r));
  ]

let si_tests =
  let impl = (module Si_tm : Tm_intf.S) in
  [
    Alcotest.test_case "snapshot: reader ignores later commits" `Quick
      (fun () ->
        (* T2 begins (takes its snapshot), T1 commits x=1, T2 then reads x:
           must still see 0 *)
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [ x ] [] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (2, 1) (* begin: snapshot read *);
              Schedule.Until_done 1; Schedule.Until_done 2 ]
        in
        check "T2 snapshot-old" true (read_of outcomes 2 x = Some (Value.int 0)));
    Alcotest.test_case "no first-committer-wins: both writers commit" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [] [ (x, 2) ] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (1, 3); Schedule.Steps (2, 3);
              Schedule.Until_done 1; Schedule.Until_done 2 ]
        in
        check "both commit" true
          (status outcomes 1 = Static_txn.Committed
          && status outcomes 2 = Static_txn.Committed));
    Alcotest.test_case "helping: reader finishes past a suspended committer"
      `Quick (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1); (y, 1) ]; spec 2 2 [ x; y ] [] ]
        in
        let solo, _ = run impl specs [ Schedule.Until_done 1 ] in
        let n = solo.Sim.steps_of 1 in
        (* at every suspension point of the committer, the reader finishes
           and never sees a torn snapshot *)
        for k = 0 to n - 1 do
          let r, outcomes =
            run impl specs [ Schedule.Steps (1, k); Schedule.Until_done 2 ]
          in
          check "completed" true
            (r.Sim.report.Schedule.stop = Schedule.Completed);
          let vx = read_of outcomes 2 x and vy = read_of outcomes 2 y in
          check
            (Printf.sprintf "atomic at k=%d" k)
            true
            ((vx = Some (Value.int 0) && vy = Some (Value.int 0))
            || (vx = Some (Value.int 1) && vy = Some (Value.int 1)))
        done);
    Alcotest.test_case "all interleavings satisfy snapshot isolation" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ x ] [ (x, 2) ] ]
        in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all ~max_nodes:300_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Spec.sat (Snapshot_isolation.check r.Sim.history))
        in
        check "holds" true (Result.is_ok r));
    Alcotest.test_case "disjoint txns contend on the clock" `Quick (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [] [ (y, 2) ] ]
        in
        let r, _ =
          run impl specs [ Schedule.Until_done 1; Schedule.Until_done 2 ]
        in
        check "strict DAP violated" false
          (Strict_dap.holds ~data_sets:(Static_txn.data_sets specs) r.Sim.log));
  ]

let candidate_tests =
  let impl = (module Candidate_tm : Tm_intf.S) in
  [
    Alcotest.test_case "torn read: some interleaving breaks SI" `Quick
      (fun () ->
        (* a 2-item writer and a 2-item reader: the reader can observe half
           of the commit *)
        let specs =
          [ spec 1 1 [] [ (x, 1); (y, 1) ]; spec 2 2 [ x; y ] [] ]
        in
        let outcomes = Hashtbl.create 4 in
        let w =
          Explorer.exists ~max_nodes:300_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Snapshot_isolation.check r.Sim.history = Spec.Unsat)
        in
        check "witness exists" true (w <> None));
    Alcotest.test_case "the witness even breaks weak adaptive consistency"
      `Quick (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1); (y, 1) ]; spec 2 2 [ x; y ] [] ]
        in
        let outcomes = Hashtbl.create 4 in
        let w =
          Explorer.exists ~max_nodes:300_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Weak_adaptive.check r.Sim.history = Spec.Unsat)
        in
        check "witness exists" true (w <> None));
    Alcotest.test_case "yet every interleaving is obstruction-free" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1); (y, 1) ]; spec 2 2 [ x; y ] [] ]
        in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all ~max_nodes:300_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Obstruction_freedom.holds r.Sim.history r.Sim.log)
        in
        check "holds" true (Result.is_ok r));
    Alcotest.test_case "and every interleaving is strictly DAP" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1); (y, 1) ]; spec 2 2 [ x; y ] [] ]
        in
        let data_sets = Static_txn.data_sets specs in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all ~max_nodes:300_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Strict_dap.holds ~data_sets r.Sim.log)
        in
        check "holds" true (Result.is_ok r));
    Alcotest.test_case "validation aborts on interference" `Quick (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (y, 1) ]; spec 2 2 [] [ (x, 9) ] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (1, 1); Schedule.Until_done 2;
              Schedule.Until_done 1 ]
        in
        check "T1 aborted" true (status outcomes 1 = Static_txn.Aborted);
        check "T2 committed" true (status outcomes 2 = Static_txn.Committed));
  ]

let tl2_tests =
  let impl = (module Tl2_tm : Tm_intf.S) in
  [
    Alcotest.test_case "read of a locked item aborts (no stall)" `Quick
      (fun () ->
        (* suspend T1 while it holds x's lock word, then read x *)
        let specs =
          [ spec 1 1 [] [ (x, 1); (y, 1) ]; spec 2 2 [ x ] [] ]
        in
        let solo, _ = run impl specs [ Schedule.Until_done 1 ] in
        let n = solo.Sim.steps_of 1 in
        let aborted_once = ref false in
        for k = 1 to n - 1 do
          let r, outcomes =
            run ~budget:500 impl specs
              [ Schedule.Steps (1, k); Schedule.Until_done 2 ]
          in
          check "never stalls" true
            (r.Sim.report.Schedule.stop = Schedule.Completed);
          if status outcomes 2 = Static_txn.Aborted then aborted_once := true
        done;
        check "abort observed somewhere" true !aborted_once);
    Alcotest.test_case "stale snapshot aborts the reader" `Quick (fun () ->
        (* T2 snapshots the clock, T1 commits x, T2 then reads x: the
           version filter must abort T2 *)
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [ x ] [] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (2, 1); Schedule.Until_done 1;
              Schedule.Until_done 2 ]
        in
        check "T2 aborted by the rv filter" true
          (status outcomes 2 = Static_txn.Aborted));
    Alcotest.test_case "read-only commit takes no extra steps" `Quick
      (fun () ->
        let specs = [ spec 1 1 [ x; y ] [] ] in
        let r, outcomes = run impl specs [ Schedule.Until_done 1 ] in
        check "committed" true (status outcomes 1 = Static_txn.Committed);
        (* begin (clock) + two reads = 3 steps, nothing at commit *)
        Alcotest.(check int) "steps" 3 (List.length r.Sim.log));
    Alcotest.test_case "disjoint txns contend on the clock" `Quick (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [] [ (y, 2) ] ]
        in
        let r, _ =
          run impl specs [ Schedule.Until_done 1; Schedule.Until_done 2 ]
        in
        check "strict DAP violated" false
          (Strict_dap.holds ~data_sets:(Static_txn.data_sets specs) r.Sim.log));
    Alcotest.test_case "all interleavings opaque" `Quick (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ x ] [ (x, 2) ] ]
        in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all ~max_steps:60 ~max_nodes:100_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Spec.sat (Opacity.check r.Sim.history))
        in
        check "holds" true (Result.is_ok r));
  ]


let norec_tests =
  let impl = (module Norec_tm : Tm_intf.S) in
  [
    Alcotest.test_case "suspended writer stalls a disjoint reader" `Quick
      (fun () ->
        (* the writer is suspended while seq is odd; even a DISJOINT
           transaction spins — NOrec's anti-DAP and anti-liveness defects
           coincide in the same object *)
        let specs =
          [ spec 1 1 [ y ] [] ; spec 2 2 [] [ (x, 2) ] ]
        in
        let solo, _ = run impl specs [ Schedule.Until_done 2 ] in
        let n = solo.Sim.steps_of 2 in
        let stalled = ref false in
        for k = 1 to n - 1 do
          let r, _ =
            run ~budget:300 impl specs
              [ Schedule.Steps (2, k); Schedule.Until_done 1 ]
          in
          match r.Sim.report.Schedule.stop with
          | Schedule.Budget_exhausted { Schedule.stalled_pid = 1; _ } ->
              stalled := true
          | _ -> ()
        done;
        check "stall observed" true !stalled);
    Alcotest.test_case "read-only txns never touch anything but seq" `Quick
      (fun () ->
        let specs = [ spec 1 1 [ x; y ] [] ] in
        let r, outcomes = run impl specs [ Schedule.Until_done 1 ] in
        check "committed" true (status outcomes 1 = Static_txn.Committed);
        (* begin: 1 seq read; two item reads with one seq post-check each *)
        check "few steps" true (List.length r.Sim.log <= 6));
    Alcotest.test_case "value-based validation aborts a torn read set"
      `Quick (fun () ->
        (* one completed read is not enough — NOrec simply re-snapshots;
           a second read after a conflicting commit must revalidate the
           first by value, fail, and abort *)
        let specs =
          [ spec 1 1 [ x; y ] []; spec 2 2 [] [ (x, 9) ] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (1, 3) (* begin + read x completed *);
              Schedule.Until_done 2; Schedule.Until_done 1 ]
        in
        check "T2 committed" true (status outcomes 2 = Static_txn.Committed);
        check "T1 aborted" true (status outcomes 1 = Static_txn.Aborted));
    Alcotest.test_case "empty read set allows re-snapshotting" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (y, 1) ]; spec 2 2 [] [ (x, 9) ] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (1, 2); Schedule.Until_done 2;
              Schedule.Until_done 1 ]
        in
        check "T2 committed" true (status outcomes 2 = Static_txn.Committed);
        check "T1 commits with the fresh snapshot" true
          (status outcomes 1 = Static_txn.Committed);
        check "T1 read the new value" true
          (read_of outcomes 1 x = Some (Value.int 9)));
    Alcotest.test_case "disjoint txns contend on seq" `Quick (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [] [ (y, 2) ] ]
        in
        let r, _ =
          run impl specs [ Schedule.Until_done 1; Schedule.Until_done 2 ]
        in
        check "strict DAP violated" false
          (Strict_dap.holds ~data_sets:(Static_txn.data_sets specs) r.Sim.log));
    Alcotest.test_case "all interleavings opaque" `Quick (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ x ] [ (x, 2) ] ]
        in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all ~max_steps:60 ~max_nodes:150_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Spec.sat (Opacity.check r.Sim.history))
        in
        check "holds" true (Result.is_ok r));
  ]


(* the Atomically retry combinator: concurrent counter increments never
   lose updates on the (conflict-)serializable TMs *)
let atomically_tests =
  List.filter_map
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      if
        not
          (List.mem M.name
             [ "tl-lock"; "dstm"; "candidate"; "tl2-clock"; "norec";
               "llsc-candidate"; "lp-progressive"; "pwf-readers" ])
      then None
      else
        Some
          (Alcotest.test_case (M.name ^ ": retried increments never lost")
             `Quick (fun () ->
               let per_proc = 5 in
               let final = ref None in
               let setup mem recorder =
                 let handle =
                   Txn_api.instantiate impl mem recorder ~items:[ x ]
                 in
                 let client pid () =
                   for _ = 1 to per_proc do
                     Atomically.run handle ~pid ~max_attempts:2_000 (fun txn ->
                         let v =
                           Value.to_int_exn (Atomically.read txn x)
                         in
                         Atomically.write txn x (Value.int (v + 1));
                         Atomically.Done ())
                   done
                 in
                 [ (1, client 1); (2, client 2);
                   (3,
                    fun () ->
                      final :=
                        Some
                          (Atomically.run handle ~pid:3 (fun txn ->
                               Atomically.Done (Atomically.read txn x)))) ]
               in
               (* fair round-robin between the two incrementers, then the
                  reader *)
               (* a fair but not perfectly periodic interleaving: strict
                  1-step alternation can livelock DSTM (see the liveness
                  probes), which is a progress question, not the lost-update
                  question asked here *)
               let atoms =
                 List.concat
                   (List.init 100 (fun i ->
                        [ Schedule.Steps (1, 2 + (i mod 3));
                          Schedule.Steps (2, 2 + ((i + 1) mod 3)) ]))
                 @ [ Schedule.Until_done 1; Schedule.Until_done 2;
                     Schedule.Until_done 3 ]
               in
               let r = Sim.replay ~budget:50_000 setup atoms in
               check "completed" true
                 (r.Sim.report.Schedule.stop = Schedule.Completed);
               check "no lost update" true
                 (!final = Some (Value.int (2 * per_proc))))))
    Registry.all


let llsc_tests =
  let impl = (module Llsc_tm : Tm_intf.S) in
  [
    Alcotest.test_case "sc-reservation blocks lost updates" `Quick (fun () ->
        (* T1 LLs x, T2 commits x, T1's SC must fail *)
        let specs =
          [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [] [ (x, 9) ] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (1, 1); Schedule.Until_done 2;
              Schedule.Until_done 1 ]
        in
        check "T2 committed" true (status outcomes 2 = Static_txn.Committed);
        check "T1 aborted by SC" true
          (status outcomes 1 = Static_txn.Aborted));
    Alcotest.test_case "torn read witness exists (the theorem)" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1); (y, 1) ]; spec 2 2 [ x; y ] [] ]
        in
        let outcomes = Hashtbl.create 4 in
        let w =
          Explorer.exists ~max_nodes:300_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Weak_adaptive.check r.Sim.history = Spec.Unsat)
        in
        check "witness exists" true (w <> None));
    Alcotest.test_case "every interleaving strictly DAP and OF" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1); (y, 1) ]; spec 2 2 [ x; y ] [] ]
        in
        let data_sets = Static_txn.data_sets specs in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all ~max_nodes:300_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r ->
              Strict_dap.holds ~data_sets r.Sim.log
              && Obstruction_freedom.holds r.Sim.history r.Sim.log)
        in
        check "holds" true (Result.is_ok r));
    Alcotest.test_case "read validation SC aborts a concurrent reader"
      `Quick (fun () ->
        (* T1 reads x (read-only in its set) and writes y; its validation
           SC on x invalidates T2's reservation on x *)
        let specs =
          [ spec 1 1 [ x ] [ (y, 1) ]; spec 2 2 [ x ] [ (x, 5) ] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (2, 1) (* T2 LLs x *);
              Schedule.Until_done 1 (* T1 commits: validation SC on x *);
              Schedule.Until_done 2 ]
        in
        check "T1 committed" true (status outcomes 1 = Static_txn.Committed);
        check "T2's SC failed" true (status outcomes 2 = Static_txn.Aborted));
  ]


let lp_tests =
  let impl = (module Lp_tm : Tm_intf.S) in
  [
    Alcotest.test_case "conflict aborts self, never the lock holder" `Quick
      (fun () ->
        (* T1 acquires x's try-lock at encounter time; T2's write then
           sees the lock and aborts T2 itself — the progressive
           contention policy *)
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [] [ (x, 2) ] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (1, 2) (* locator read + lock CAS *);
              Schedule.Until_done 2; Schedule.Until_done 1 ]
        in
        check "T2 aborted itself" true
          (status outcomes 2 = Static_txn.Aborted);
        check "the lock holder committed" true
          (status outcomes 1 = Static_txn.Committed));
    Alcotest.test_case "a reader observing a locked item aborts" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [ x ] [] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (1, 2); Schedule.Until_done 2;
              Schedule.Until_done 1 ]
        in
        check "reader aborted" true (status outcomes 2 = Static_txn.Aborted);
        check "writer committed" true
          (status outcomes 1 = Static_txn.Committed));
    Alcotest.test_case "a conflict abort releases acquired locks" `Quick
      (fun () ->
        (* T1 locks x, then hits T2's lock on y and self-aborts; x must
           be unlocked again for T3 *)
        let specs =
          [ spec 1 1 [] [ (x, 1); (y, 1) ]; spec 2 2 [] [ (y, 2) ];
            spec 3 3 [] [ (x, 3) ] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (2, 2) (* T2 holds y's lock *);
              Schedule.Until_done 1 (* locks x, conflicts on y, aborts *);
              Schedule.Until_done 2; Schedule.Until_done 3 ]
        in
        check "T1 aborted" true (status outcomes 1 = Static_txn.Aborted);
        check "T2 committed" true (status outcomes 2 = Static_txn.Committed);
        check "T3 reacquires x's lock" true
          (status outcomes 3 = Static_txn.Committed));
    Alcotest.test_case "disjoint txns never contend (strict DAP)" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [] [ (y, 2) ] ]
        in
        let data_sets = Static_txn.data_sets specs in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all ~max_nodes:150_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Strict_dap.holds ~data_sets r.Sim.log)
        in
        check "holds" true (Result.is_ok r));
    Alcotest.test_case "all interleavings opaque" `Quick (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ x ] [ (x, 2) ] ]
        in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all ~max_steps:60 ~max_nodes:150_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Spec.sat (Opacity.check r.Sim.history))
        in
        check "holds" true (Result.is_ok r));
  ]


let pwf_tests =
  let impl = (module Pwf_tm : Tm_intf.S) in
  [
    Alcotest.test_case "read-only txn takes exactly one shared step" `Quick
      (fun () ->
        (* the whole read-only transaction is the one root load at begin:
           the constant step bound behind reader wait-freedom *)
        let specs = [ spec 1 1 [ x; y ] [] ] in
        let r, outcomes = run impl specs [ Schedule.Until_done 1 ] in
        check "committed" true (status outcomes 1 = Static_txn.Committed);
        check_int "one shared step" 1 (r.Sim.steps_of 1));
    Alcotest.test_case "updater retries its CAS and commits (lock-free)"
      `Quick (fun () ->
        (* T1 snapshots the root, T2 commits first; T1's publish CAS
           fails once, re-reads the root and succeeds *)
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [] [ (y, 2) ];
            spec 3 3 [ x; y ] [] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (1, 1) (* root snapshot only *);
              Schedule.Until_done 2; Schedule.Until_done 1;
              Schedule.Until_done 3 ]
        in
        check "T1 committed after the retry" true
          (status outcomes 1 = Static_txn.Committed);
        check "T2 committed" true (status outcomes 2 = Static_txn.Committed);
        check "both writes visible" true
          (read_of outcomes 3 x = Some (Value.int 1)
          && read_of outcomes 3 y = Some (Value.int 2)));
    Alcotest.test_case "updater aborts on read validation failure" `Quick
      (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (y, 1) ]; spec 2 2 [] [ (x, 9) ] ]
        in
        let _, outcomes =
          run impl specs
            [ Schedule.Steps (1, 1) (* snapshot read of x *);
              Schedule.Until_done 2; Schedule.Until_done 1 ]
        in
        check "T2 committed" true (status outcomes 2 = Static_txn.Committed);
        check "T1 aborted" true (status outcomes 1 = Static_txn.Aborted));
    Alcotest.test_case "disjoint txns contend on the root" `Quick (fun () ->
        let specs =
          [ spec 1 1 [] [ (x, 1) ]; spec 2 2 [] [ (y, 2) ] ]
        in
        let r, _ =
          run impl specs [ Schedule.Until_done 1; Schedule.Until_done 2 ]
        in
        check "strict DAP violated" false
          (Strict_dap.holds ~data_sets:(Static_txn.data_sets specs) r.Sim.log));
    Alcotest.test_case "all interleavings opaque" `Quick (fun () ->
        let specs =
          [ spec 1 1 [ x ] [ (x, 1) ]; spec 2 2 [ x ] [ (x, 2) ] ]
        in
        let outcomes = Hashtbl.create 4 in
        let r =
          Explorer.for_all ~max_steps:60 ~max_nodes:150_000
            (setup impl specs outcomes) ~pids:[ 1; 2 ]
            (fun r -> Spec.sat (Opacity.check r.Sim.history))
        in
        check "holds" true (Result.is_ok r));
  ]


let atomically_unit_tests =
  [
    Alcotest.test_case "Retry outcome aborts and re-executes" `Quick
      (fun () ->
        let attempts = ref 0 in
        let got = ref None in
        let setup mem recorder =
          let handle =
            Txn_api.instantiate (module Candidate_tm) mem recorder
              ~items:[ x ]
          in
          [ (1,
             fun () ->
               got :=
                 Some
                   (Atomically.run handle ~pid:1 (fun txn ->
                        incr attempts;
                        let v = Atomically.read txn x in
                        if !attempts < 3 then Atomically.Retry
                        else Atomically.Done v))) ]
        in
        ignore (Sim.replay ~budget:1_000 setup [ Schedule.Until_done 1 ]);
        Alcotest.(check int) "three attempts" 3 !attempts;
        check "value" true (!got = Some Value.initial));
    Alcotest.test_case "Too_many_retries is raised and reported" `Quick
      (fun () ->
        let setup mem recorder =
          let handle =
            Txn_api.instantiate (module Candidate_tm) mem recorder
              ~items:[ x ]
          in
          [ (1,
             fun () ->
               ignore
                 (Atomically.run handle ~pid:1 ~max_attempts:2 (fun _ ->
                      Atomically.Retry))) ]
        in
        let r = Sim.replay ~budget:1_000 setup [ Schedule.Until_done 1 ] in
        check "crashed with Too_many_retries" true
          (match r.Sim.report.Schedule.stop with
          | Schedule.Crashed (1, Atomically.Too_many_retries _) -> true
          | _ -> false));
    Alcotest.test_case "fresh tids are unique across attempts" `Quick
      (fun () ->
        let setup mem recorder =
          let handle =
            Txn_api.instantiate (module Candidate_tm) mem recorder
              ~items:[ x ]
          in
          [ (1,
             fun () ->
               for _ = 1 to 3 do
                 Atomically.run handle ~pid:1 (fun txn ->
                     ignore (Atomically.read txn x);
                     Atomically.Done ())
               done) ]
        in
        let r = Sim.replay ~budget:1_000 setup [ Schedule.Until_done 1 ] in
        let tids = History.txns r.Sim.history in
        Alcotest.(check int) "three distinct txns" 3 (List.length tids);
        check "well-formed" true
          (Result.is_ok (History.well_formed r.Sim.history)));
  ]

let () =
  Alcotest.run "tm"
    [
      ("common", List.concat_map common_tests Registry.all);
      ("atomically", atomically_unit_tests @ atomically_tests);
      ("tl-lock", tl_tests);
      ("pram-local", pram_tests);
      ("dstm", dstm_tests);
      ("si-clock", si_tests);
      ("candidate", candidate_tests);
      ("tl2-clock", tl2_tests);
      ("norec", norec_tests);
      ("llsc-candidate", llsc_tests);
      ("lp-progressive", lp_tests);
      ("pwf-readers", pwf_tests);
    ]
