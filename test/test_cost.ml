(* The cost observatory: RMR/RMW metering laws on hand-built logs, the
   golden per-TM cost rows (Figure 2 and the explore sweep), byte-level
   determinism of the JSONL artifact, and the reason-code registry —
   including the audit that the CLI has no bare `exit 1' left. *)

open Core

(* ------------------------------------------------------------------ *)
(* hand-built logs: the RMR model on known access patterns *)

let entry index pid oid prim ~changed =
  {
    Access_log.index;
    pid;
    tid = Some (Tid.v pid);
    oid = Oid.of_int oid;
    prim;
    response = Value.unit;
    changed;
  }

let write v = Primitive.Write (Value.int v)

(* p1 alone: first touch of each object is a cold-miss RMR; re-touching
   an object nobody wrote since is local *)
let solo_log =
  [
    entry 0 1 0 (write 1) ~changed:true;
    entry 1 1 0 Primitive.Read ~changed:false;
    entry 2 1 0 Primitive.Read ~changed:false;
    entry 3 1 1 (write 2) ~changed:true;
  ]

(* same shape, but p2's writes to the object interleave: every re-read
   by p1 is now remote again *)
let contended_log =
  [
    entry 0 1 0 (write 1) ~changed:true;
    entry 1 2 0 (write 9) ~changed:true;
    entry 2 1 0 Primitive.Read ~changed:false;
    entry 3 2 0 (write 8) ~changed:true;
    entry 4 1 0 Primitive.Read ~changed:false;
    entry 5 1 1 (write 2) ~changed:true;
  ]

let test_rmr_remote_writes_increase () =
  let solo = Cost.analyse solo_log in
  let contended = Cost.analyse contended_log in
  (* solo: p1 pays exactly its two cold misses *)
  Alcotest.(check int) "solo rmrs" 2 solo.Cost.rmrs;
  Alcotest.(check int) "solo steps" 4 solo.Cost.steps;
  (* contended: p1's cold misses plus one RMR per invalidated re-read,
     plus p2's own cold miss — strictly more than solo.  (p2's second
     write is local: only p1's trivial read intervened.) *)
  Alcotest.(check bool) "remote writes increase RMRs" true
    (contended.Cost.rmrs > solo.Cost.rmrs);
  Alcotest.(check int) "contended rmrs" 5 contended.Cost.rmrs;
  (* both of p1's re-reads follow a remote write *)
  Alcotest.(check int) "solo rarw" 0 solo.Cost.read_after_remote_write;
  Alcotest.(check int) "contended rarw" 2
    contended.Cost.read_after_remote_write

let test_rmw_class () =
  Alcotest.(check bool) "cas" true
    (Cost.rmw_class
       (Primitive.Cas { expected = Value.int 0; desired = Value.int 1 }));
  Alcotest.(check bool) "fetch-add" true
    (Cost.rmw_class (Primitive.Fetch_add 1));
  Alcotest.(check bool) "trylock" true
    (Cost.rmw_class (Primitive.Try_lock 1));
  Alcotest.(check bool) "sc" true
    (Cost.rmw_class (Primitive.Store_conditional (1, Value.int 1)));
  Alcotest.(check bool) "read" false (Cost.rmw_class Primitive.Read);
  Alcotest.(check bool) "write" false (Cost.rmw_class (write 1));
  Alcotest.(check bool) "unlock" false (Cost.rmw_class (Primitive.Unlock 1));
  Alcotest.(check bool) "ll" false
    (Cost.rmw_class (Primitive.Load_linked 1))

let test_merge_laws () =
  let a = Cost.analyse solo_log and b = Cost.analyse contended_log in
  let m = Cost.merge a b in
  Alcotest.(check int) "steps sum" (a.Cost.steps + b.Cost.steps)
    m.Cost.steps;
  Alcotest.(check int) "rmrs sum" (a.Cost.rmrs + b.Cost.rmrs) m.Cost.rmrs;
  Alcotest.(check int) "footprint max"
    (max a.Cost.footprint_max b.Cost.footprint_max)
    m.Cost.footprint_max;
  Alcotest.(check (list (of_pp Fmt.nop))) "merged txns dropped" []
    m.Cost.txns;
  let z = Cost.merge Cost.zero a in
  Alcotest.(check int) "zero is neutral (steps)" a.Cost.steps z.Cost.steps;
  Alcotest.(check int) "zero is neutral (rmrs)" a.Cost.rmrs z.Cost.rmrs

(* ------------------------------------------------------------------ *)
(* golden rows: the derived costs of the proof's Figure 2 on the
   candidate and of the stock explore sweep on si-clock are pinned
   byte-for-byte — the determinism the cost artifact advertises *)

let row_of tm workload =
  match
    List.find_opt
      (fun (r : Cost_run.row) ->
        r.Cost_run.tm = tm && r.Cost_run.workload = workload)
      (Cost_run.rows_for (Registry.find_exn tm))
  with
  | Some r -> r
  | None -> Alcotest.failf "no %s/%s row" tm workload

let test_golden_fig2_candidate () =
  Alcotest.(check string)
    "figure-2 cost row"
    "{\"schema\":1,\"type\":\"cost_row\",\"tm\":\"candidate\",\"workload\":\"fig2\",\"status\":\"ok\",\"executions\":1,\"steps\":27,\"rmrs\":14,\"rmw\":7,\"rarw\":3,\"footprint\":4,\"capacity\":6,\"commits\":1,\"aborts\":0,\"wasted\":0,\"wasted_contended\":0,\"wasted_uncontended\":0}"
    (Obs_json.to_string (Cost_run.row_json (row_of "candidate" "fig2")))

let test_golden_explore_si_clock () =
  Alcotest.(check string)
    "explore cost row"
    "{\"schema\":1,\"type\":\"cost_row\",\"tm\":\"si-clock\",\"workload\":\"explore\",\"status\":\"ok\",\"executions\":186,\"steps\":2966,\"rmrs\":1865,\"rmw\":1210,\"rarw\":567,\"footprint\":4,\"capacity\":4,\"commits\":372,\"aborts\":0,\"wasted\":0,\"wasted_contended\":0,\"wasted_uncontended\":0}"
    (Obs_json.to_string (Cost_run.row_json (row_of "si-clock" "explore")))

let test_jsonl_deterministic () =
  let impl = Registry.find_exn "candidate" in
  let once () = Cost_run.to_jsonl (Cost_run.rows_for impl) in
  let a = once () and b = once () in
  Alcotest.(check string) "byte-identical" a b;
  (* and the matrix is within its own expectations *)
  Alcotest.(check (list (of_pp Fmt.nop)))
    "expected-cost check clean" []
    (Cost_run.check (Cost_run.rows_for impl))

(* ------------------------------------------------------------------ *)
(* reason codes: the catalogue is the source of truth — stable distinct
   codes, one per constructor *)

let test_reason_catalogue () =
  let codes = List.map fst Reason.catalogue in
  Alcotest.(check int) "distinct codes" (List.length codes)
    (List.length (List.sort_uniq compare codes));
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " well-formed") true
        (String.length c = 8 && String.sub c 0 5 = "PCL-E"))
    codes;
  (* every constructor's code is in the catalogue, and its reason line
     carries the schema stamp *)
  let reasons =
    [
      Reason.Internal_error { exn = "x" };
      Reason.Cli_error { rc = 124 };
      Reason.Invalid_input { msg = "m" };
      Reason.No_consistency { failing = 1; executions = 2; tms = [ "a" ] };
      Reason.Contract_violation
        { violations = 1; runs = 2; kinds = [ ("consistency", 1) ] };
      Reason.Unexpected_findings
        { unexpected = 1; total = 2; lints = [ "race" ] };
      Reason.Closure_violation
        { violations = 1; cells = 2; witnesses = [ "a/b/c" ] };
      Reason.Violation_trace
        { trace = "t"; verdicts = 1; sources = [ "s" ] };
      Reason.Stall { pid = 1; step = None; obj = None; prim = None };
      Reason.Cost_expectation
        { tm = "a"; workload = "explore"; violated = [ "rmw!=0" ] };
      Reason.Soak_stall
        {
          tm = "x";
          pid = 1;
          step = None;
          obj = None;
          prim = None;
          txns = 0;
          target = 1;
        };
      Reason.Progress_violation
        {
          tm = Some "tl-lock";
          pass = "pwf";
          pid = Some 1;
          txn = Some 3;
          witness_step = Some 2;
          unexpected = 1;
        };
      Reason.Conform_failure
        {
          failed = [ "uniform-none-immediate" ];
          timeouts = [];
          scenarios = 60;
          cells = 480;
          quarantined = 1;
        };
    ]
  in
  Alcotest.(check int) "catalogue covers every constructor"
    (List.length reasons)
    (List.length Reason.catalogue);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Reason.code r ^ " catalogued")
        true
        (List.mem_assoc (Reason.code r) Reason.catalogue);
      match Reason.to_json r with
      | Obs_json.Obj (("schema", Obs_json.Int 1) :: _) -> ()
      | j ->
          Alcotest.failf "reason line not schema-stamped: %s"
            (Obs_json.to_string j))
    reasons

(* the CLI audit: every nonzero exit goes through Reason.exit_with, so
   the source must contain no bare `exit 1' *)
let test_cli_no_bare_exits () =
  let file = "../bin/pcl_tm.ml" in
  if not (Sys.file_exists file) then ()
  else begin
    let ic = open_in file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let contains_at i sub =
      String.length sub <= String.length src - i
      && String.sub src i (String.length sub) = sub
    in
    let bare = ref 0 in
    String.iteri
      (fun i _ -> if contains_at i "exit 1" then incr bare)
      src;
    Alcotest.(check int) "no bare `exit 1' in the CLI" 0 !bare;
    (* and the soak command's stall exit goes through the registry *)
    let found = ref false in
    String.iteri
      (fun i _ -> if contains_at i "Reason.Soak_stall" then found := true)
      src;
    Alcotest.(check bool) "soak stall uses Reason.Soak_stall" true !found;
    (* and lint's progress-guarantee exit goes through PCL-E109 *)
    let progress = ref false in
    String.iteri
      (fun i _ ->
        if contains_at i "Reason.Progress_violation" then progress := true)
      src;
    Alcotest.(check bool)
      "lint progress failures use Reason.Progress_violation" true !progress;
    (* and conform's sweep failures go through PCL-E110 *)
    let conform = ref false in
    String.iteri
      (fun i _ ->
        if contains_at i "Reason.Conform_failure" then conform := true)
      src;
    Alcotest.(check bool)
      "conform failures use Reason.Conform_failure" true !conform
  end

let () =
  Alcotest.run "cost"
    [
      ( "metering",
        [
          Alcotest.test_case "remote writes increase RMRs" `Quick
            test_rmr_remote_writes_increase;
          Alcotest.test_case "rmw class" `Quick test_rmw_class;
          Alcotest.test_case "merge laws" `Quick test_merge_laws;
        ] );
      ( "golden",
        [
          Alcotest.test_case "figure-2 candidate" `Quick
            test_golden_fig2_candidate;
          Alcotest.test_case "explore si-clock" `Slow
            test_golden_explore_si_clock;
          Alcotest.test_case "jsonl deterministic" `Quick
            test_jsonl_deterministic;
        ] );
      ( "reason",
        [
          Alcotest.test_case "catalogue" `Quick test_reason_catalogue;
          Alcotest.test_case "cli has no bare exits" `Quick
            test_cli_no_bare_exits;
        ] );
    ]
