(* Tests for the scenario catalogue (lib/scenario): splitmix64
   known-answer vectors and the derive-collision law the per-cell seeding
   rests on, the strict catalogue loader (accept/reject cases), the
   crash-contained conformance runner, row determinism and the resume
   journal codec. *)

open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* -- splitmix64 known-answer vectors ------------------------------------ *)

(* Reference outputs of splitmix64 for raw initial states 0, 42 and
   0x123456789ABCDEF.  [Chaos_prng.create seed] sets the raw state to
   [seed lxor 0x9E3779B9], so the seed that produces raw state [s] is
   [s lxor 0x9E3779B9]. *)
let kat_vectors =
  [
    ( 0,
      [
        0xE220A8397B1DCDAFL;
        0x6E789E6AA1B965F4L;
        0x06C45D188009454FL;
        0xF88BB8A8724C81ECL;
        0x1B39896A51A8749BL;
      ] );
    ( 42,
      [
        0xBDD732262FEB6E95L;
        0x28EFE333B266F103L;
        0x47526757130F9F52L;
        0x581CE1FF0E4AE394L;
        0x09BC585A244823F2L;
      ] );
    ( 0x123456789ABCDEF,
      [
        0x157A3807A48FAA9DL;
        0xD573529B34A1D093L;
        0x2F90B72E996DCCBEL;
        0xA2D419334C4667ECL;
        0x01404CE914938008L;
      ] );
  ]

let prng_tests =
  [
    Alcotest.test_case "splitmix64 matches the reference vectors" `Quick
      (fun () ->
        List.iter
          (fun (state, expected) ->
            let t = Chaos_prng.create (state lxor 0x9E3779B9) in
            List.iteri
              (fun i want ->
                let got = Chaos_prng.next_int64 t in
                if got <> want then
                  Alcotest.failf "state %d output %d: got %Lx, want %Lx"
                    state i got want)
              expected)
          kat_vectors);
    Alcotest.test_case "next is non-negative" `Quick (fun () ->
        let t = Chaos_prng.create 0 in
        for _ = 1 to 1000 do
          check "non-negative" true (Chaos_prng.next t >= 0)
        done);
    Alcotest.test_case "derive is deterministic and rejects negatives"
      `Quick (fun () ->
        check_int "stable" (Chaos_prng.derive 7 3) (Chaos_prng.derive 7 3);
        check "distinct children" true
          (Chaos_prng.derive 7 3 <> Chaos_prng.derive 7 4);
        match Chaos_prng.derive 7 (-1) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "derive accepted a negative index");
  ]

(* the law the per-cell sub-seeding rests on: for any base, the derived
   child seeds never collide within a run-sized fan-out *)
let derive_no_collision =
  QCheck.Test.make ~count:200
    ~name:"derived per-segment seeds never collide"
    QCheck.(pair small_signed_int (int_bound 300))
    (fun (base, n) ->
      let seeds = List.init (n + 2) (fun k -> Chaos_prng.derive base k) in
      List.length (List.sort_uniq compare seeds) = List.length seeds)

(* -- the catalogue loader ----------------------------------------------- *)

let write_catalogue body =
  let path = Filename.temp_file "scenario" ".json" in
  let oc = open_out path in
  output_string oc body;
  close_out oc;
  path

let load body =
  let path = write_catalogue body in
  let r = Scenario.load_file path in
  Sys.remove path;
  r

let minimal id =
  Printf.sprintf
    {|{"id":%S,"family":"uniform","expect":{"verdict":"any","stop":"any"}}|}
    id

let catalogue scenarios =
  Printf.sprintf {|{"schema":1,"scenarios":[%s]}|}
    (String.concat "," scenarios)

let expect_reject what body =
  match load body with
  | Ok _ -> Alcotest.failf "loader accepted %s" what
  | Error msg -> check (what ^ " error is descriptive") true (msg <> "")

let loader_tests =
  [
    Alcotest.test_case "minimal scenario parses with defaults" `Quick
      (fun () ->
        match load (catalogue [ minimal "t1" ]) with
        | Error e -> Alcotest.fail e
        | Ok [ s ] ->
            check_string "id" "t1" s.Scenario.id;
            check_int "procs default" 3 s.Scenario.procs;
            check_int "txns default" 3 s.Scenario.txns_per_proc;
            check_int "keys default" 4 s.Scenario.keys;
            check_int "rounds default" 40 s.Scenario.rounds;
            check_int "budget default" 30000 s.Scenario.budget;
            check_int "read_pct default" 0 s.Scenario.read_pct;
            check "no quarantine" false s.Scenario.quarantine;
            check "all tms" true (s.Scenario.tms = [])
        | Ok l -> Alcotest.failf "expected 1 scenario, got %d" (List.length l));
    Alcotest.test_case "read-mostly defaults read_pct to 90" `Quick
      (fun () ->
        match
          load
            (catalogue
               [
                 {|{"id":"rm","family":"read-mostly","expect":{"verdict":"any","stop":"any"}}|};
               ])
        with
        | Ok [ s ] -> check_int "read_pct" 90 s.Scenario.read_pct
        | Ok _ | Error _ -> Alcotest.fail "read-mostly scenario rejected");
    Alcotest.test_case "loader rejects malformed catalogues" `Quick
      (fun () ->
        expect_reject "an unknown field"
          (catalogue
             [
               {|{"id":"x","family":"uniform","bogus":1,"expect":{"verdict":"any","stop":"any"}}|};
             ]);
        expect_reject "an unknown family"
          (catalogue
             [
               {|{"id":"x","family":"gaussian","expect":{"verdict":"any","stop":"any"}}|};
             ]);
        expect_reject "an unknown TM name"
          (catalogue
             [
               {|{"id":"x","family":"uniform","tms":["no-such-tm"],"expect":{"verdict":"any","stop":"any"}}|};
             ]);
        expect_reject "an unknown CM policy"
          (catalogue
             [
               {|{"id":"x","family":"uniform","cms":["no-such-cm"],"expect":{"verdict":"any","stop":"any"}}|};
             ]);
        expect_reject "an unknown checker verdict"
          (catalogue
             [
               {|{"id":"x","family":"uniform","expect":{"verdict":"no-such-checker","stop":"any"}}|};
             ]);
        expect_reject "a missing expect"
          (catalogue [ {|{"id":"x","family":"uniform"}|} ]);
        expect_reject "an unknown fault plan"
          (catalogue
             [
               {|{"id":"x","family":"uniform","fault":"meteor","expect":{"verdict":"any","stop":"any"}}|};
             ]);
        expect_reject "a duplicate id"
          (catalogue [ minimal "dup"; minimal "dup" ]);
        expect_reject "a wrong schema version"
          {|{"schema":2,"scenarios":[]}|};
        expect_reject "unparseable JSON" "{nope");
    Alcotest.test_case "load_files rejects cross-file duplicate ids" `Quick
      (fun () ->
        let a = write_catalogue (catalogue [ minimal "same" ]) in
        let b = write_catalogue (catalogue [ minimal "same" ]) in
        let r = Scenario.load_files [ a; b ] in
        Sys.remove a;
        Sys.remove b;
        match r with
        | Ok _ -> Alcotest.fail "cross-file duplicate id accepted"
        | Error _ -> ());
    Alcotest.test_case "to_json round-trips through the loader" `Quick
      (fun () ->
        match load (catalogue [ minimal "rt" ]) with
        | Ok [ s ] -> (
            let body =
              Printf.sprintf {|{"schema":1,"scenarios":[%s]}|}
                (Obs_json.to_string (Scenario.to_json s))
            in
            match load body with
            | Ok [ s' ] -> check "round-trip" true (s = s')
            | Ok _ | Error _ ->
                Alcotest.fail "serialized scenario rejected")
        | Ok _ | Error _ -> Alcotest.fail "setup scenario rejected");
    Alcotest.test_case "the committed catalogue loads and is large enough"
      `Quick (fun () ->
        (* the tests run from _build/default/test; reach back to the
           source tree, and skip quietly if it is not there (sandboxed
           runs) *)
        let dir =
          List.find_opt Sys.file_exists
            [ "../../../scenarios"; "../scenarios"; "scenarios" ]
        in
        match dir with
        | None -> ()
        | Some dir -> (
            match Scenario.load_dir dir with
            | Error e -> Alcotest.fail e
            | Ok scenarios ->
                check "catalogue holds at least 60 scenarios" true
                  (List.length scenarios >= 60)));
  ]

(* -- the conformance runner --------------------------------------------- *)

let scenario ?(fault = Fault.Baseline) ?(tms = [ "tl-lock" ])
    ?(cms = [ "immediate" ]) ?(verdict = "any") ?(stop = "any")
    ?(lint = false) ?(min_commit_pct = 0) ?(quarantine = false) id =
  {
    Scenario.id;
    describe = "";
    family = Scenario.Uniform;
    procs = 2;
    txns_per_proc = 2;
    ops_per_txn = 2;
    keys = 3;
    read_pct = 0;
    fault;
    tms;
    cms;
    rounds = 12;
    quantum = 4;
    budget = 30000;
    expect = { Scenario.verdict; stop; lint; min_commit_pct };
    quarantine;
  }

let runner_tests =
  [
    Alcotest.test_case "a healthy cell passes" `Quick (fun () ->
        let s = scenario ~verdict:"claim" ~stop:"completed" "ok" in
        let r = Scenario_run.run_row ~inject:Scenario_run.No_inject ~seed:1 s in
        check_string "status" "pass" r.Scenario_run.status;
        check_int "cells" 1 r.Scenario_run.cells;
        check_int "failed" 0 r.Scenario_run.failed);
    Alcotest.test_case "an injected crash is contained and attributed"
      `Quick (fun () ->
        let s = scenario "crashy" in
        let r =
          Scenario_run.run_row ~inject:Scenario_run.Inject_crash ~seed:1 s
        in
        check_string "status" "fail" r.Scenario_run.status;
        match r.Scenario_run.failures with
        | [ c ] ->
            check "reason crash" true (c.Scenario_run.reason = Some "crash")
        | l -> Alcotest.failf "expected 1 failure, got %d" (List.length l));
    Alcotest.test_case "an injected stall is a timeout failure" `Quick
      (fun () ->
        (* large enough that the shrunken stall budget cannot cover it *)
        let s =
          {
            (scenario "stally") with
            Scenario.txns_per_proc = 20;
            ops_per_txn = 8;
            rounds = 60;
          }
        in
        let r =
          Scenario_run.run_row ~inject:Scenario_run.Inject_stall ~seed:1 s
        in
        check_string "status" "fail" r.Scenario_run.status;
        match r.Scenario_run.failures with
        | [ c ] ->
            check "reason timeout" true
              (c.Scenario_run.reason = Some "timeout")
        | l -> Alcotest.failf "expected 1 failure, got %d" (List.length l));
    Alcotest.test_case "injections hit only the first cell" `Quick
      (fun () ->
        let s = scenario ~cms:[ "immediate"; "backoff" ] "spread" in
        let r =
          Scenario_run.run_row ~inject:Scenario_run.Inject_crash ~seed:1 s
        in
        check_int "cells" 2 r.Scenario_run.cells;
        check_int "one failure" 1 r.Scenario_run.failed;
        check_int "one pass" 1 r.Scenario_run.passed);
    Alcotest.test_case "quarantine downgrades a failure" `Quick (fun () ->
        let s = scenario ~quarantine:true "known-bad" in
        let r =
          Scenario_run.run_row ~inject:Scenario_run.Inject_crash ~seed:1 s
        in
        check_string "status" "quarantine" r.Scenario_run.status);
    Alcotest.test_case "an impossible commit floor fails with commits"
      `Quick (fun () ->
        (* tl-lock under a crash fault with every transaction required to
           commit: the crashed process's transactions cannot commit *)
        let s =
          scenario ~fault:Fault.Crash_stop ~stop:"any" ~min_commit_pct:100
            "floor"
        in
        let r = Scenario_run.run_row ~inject:Scenario_run.No_inject ~seed:1 s in
        check_string "status" "fail" r.Scenario_run.status;
        match r.Scenario_run.failures with
        | [ c ] ->
            check "reason commits" true
              (c.Scenario_run.reason = Some "commits")
        | l -> Alcotest.failf "expected 1 failure, got %d" (List.length l));
    Alcotest.test_case "rows are deterministic under a fixed seed" `Quick
      (fun () ->
        let s =
          scenario ~tms:[] ~cms:[ "immediate" ] ~verdict:"claim" "det"
        in
        let s = { s with Scenario.tms = [] } in
        let run () =
          Obs_json.to_string
            (Scenario_run.row_json
               (Scenario_run.run_row ~inject:Scenario_run.No_inject ~seed:5
                  s))
        in
        check_string "byte-identical rows" (run ()) (run ()));
    Alcotest.test_case "cells_of expands empty selections to everything"
      `Quick (fun () ->
        let s = scenario ~tms:[] ~cms:[] "all" in
        check_int "tms x cms"
          (List.length Registry.all * List.length Cm.all)
          (List.length (Scenario_run.cells_of s)));
  ]

(* -- the resume journal ------------------------------------------------- *)

let journal_tests =
  [
    Alcotest.test_case "journal_load round-trips rows and drops torn lines"
      `Quick (fun () ->
        let s = scenario "j1" in
        let row =
          Scenario_run.run_row ~inject:Scenario_run.No_inject ~seed:1 s
        in
        let line = Obs_json.to_string (Scenario_run.row_json row) in
        let path = Filename.temp_file "journal" ".jsonl" in
        let oc = open_out path in
        output_string oc (line ^ "\n");
        output_string oc "{\"schema\":1,\"type\":\"conf";
        (* a write cut short by the interrupt *)
        close_out oc;
        let entries = Scenario_run.journal_load path in
        Sys.remove path;
        match entries with
        | [ (id, status, raw) ] ->
            check_string "id" "j1" id;
            check_string "status" "pass" status;
            check_string "raw line preserved" line raw
        | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l));
    Alcotest.test_case "journal_load of a missing file is empty" `Quick
      (fun () ->
        check "empty" true
          (Scenario_run.journal_load "/nonexistent/journal" = []));
  ]

let () =
  Alcotest.run "scenario"
    [
      ("prng", prng_tests);
      ("prng-laws", [ QCheck_alcotest.to_alcotest derive_no_collision ]);
      ("loader", loader_tests);
      ("runner", runner_tests);
      ("journal", journal_tests);
    ]
