(* The telemetry layer: metric aggregation, span nesting, the JSONL
   export round-trip, and the simulator integration (step counters must
   agree with the replay's own accounting). *)

open Core

(* ------------------------------------------------------------------ *)
(* counters *)

let test_counter_aggregation () =
  let m = Metrics.create () in
  let c = Metrics.counter m "requests_total" ~labels:[ ("tm", "a") ] in
  Metrics.inc c;
  Metrics.inc c;
  Metrics.add c 3;
  Alcotest.(check int) "handle value" 5 (Metrics.counter_value c);
  (* label order is irrelevant: same cell either way *)
  Metrics.incr_c m "multi_total" ~labels:[ ("x", "1"); ("y", "2") ];
  Metrics.incr_c m "multi_total" ~labels:[ ("y", "2"); ("x", "1") ];
  Alcotest.(check (option (of_pp Fmt.nop)))
    "canonical labels merge"
    (Some (Metrics.VCounter 2))
    (Metrics.find m "multi_total" ~labels:[ ("x", "1"); ("y", "2") ]);
  (* one-shots hit the same cell as the handle *)
  Metrics.incr_c m "requests_total" ~labels:[ ("tm", "a") ];
  Alcotest.(check int) "one-shot merges" 6 (Metrics.counter_value c);
  (* sum over label sets *)
  Metrics.add_c m "requests_total" ~labels:[ ("tm", "b") ] 10;
  Alcotest.(check int) "sum_counters" 16
    (Metrics.sum_counters m "requests_total");
  (* kind mismatch is a programming error *)
  (try
     ignore (Metrics.gauge m "requests_total" ~labels:[ ("tm", "a") ]);
     Alcotest.fail "expected Invalid_argument on kind mismatch"
   with Invalid_argument _ -> ());
  (* reset zeroes in place; the old handle stays usable *)
  Metrics.reset m;
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c);
  Metrics.inc c;
  Alcotest.(check int) "handle survives reset" 1 (Metrics.counter_value c)

let test_histogram_stats () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "latency_ns" in
  List.iter (Metrics.observe h) [ 5.0; 1.0; 3.0 ];
  (match Metrics.find m "latency_ns" with
  | Some (Metrics.VHistogram s) ->
      Alcotest.(check int) "count" 3 s.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 9.0 s.Metrics.sum;
      Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
      Alcotest.(check (float 1e-9)) "max" 5.0 s.Metrics.max
  | _ -> Alcotest.fail "expected histogram");
  (* snapshot is sorted and typed *)
  Metrics.incr_c m "a_total";
  (match Metrics.snapshot m with
  | [ a; l ] ->
      Alcotest.(check string) "sorted first" "a_total" a.Metrics.name;
      Alcotest.(check string) "sorted second" "latency_ns" l.Metrics.name
  | _ -> Alcotest.fail "expected two samples")

(* ------------------------------------------------------------------ *)
(* quantiles: for up to [sample_cap] observations the sample buffer is
   complete, so p50/p95/p99 must equal the exact nearest-rank quantiles
   of the sorted data; above the cap they are decimated estimates but
   stay ordered and bracketed by min/max *)

let exact_nearest_rank xs q =
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  let rank = max 0 (min (n - 1) (int_of_float (ceil (q *. float n)) - 1)) in
  List.nth sorted rank

let quantile_law =
  QCheck.Test.make ~name:"histogram quantiles: exact under cap, ordered"
    ~count:200
    QCheck.(list_of_size Gen.(1 -- 80) (map (fun x -> Float.abs x) float))
    (fun xs ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "q_ns" in
      List.iter (Metrics.observe h) xs;
      match Metrics.find m "q_ns" with
      | Some (Metrics.VHistogram s) ->
          let close a b = Float.abs (a -. b) < 1e-9 in
          close s.Metrics.p50 (exact_nearest_rank xs 0.50)
          && close s.Metrics.p95 (exact_nearest_rank xs 0.95)
          && close s.Metrics.p99 (exact_nearest_rank xs 0.99)
          && s.Metrics.p50 <= s.Metrics.p95
          && s.Metrics.p95 <= s.Metrics.p99
          && s.Metrics.min <= s.Metrics.p50
          && s.Metrics.p99 <= s.Metrics.max
      | _ -> false)

let test_quantiles_over_cap () =
  (* 10_000 >> sample_cap: the decimated estimates of a uniform ramp
     stay ordered, bracketed, and near the true quantiles *)
  let m = Metrics.create () in
  let h = Metrics.histogram m "ramp_ns" in
  for i = 1 to 10_000 do
    Metrics.observe h (float_of_int i)
  done;
  match Metrics.find m "ramp_ns" with
  | Some (Metrics.VHistogram s) ->
      Alcotest.(check int) "count" 10_000 s.Metrics.count;
      Alcotest.(check bool) "ordered" true
        (s.Metrics.p50 <= s.Metrics.p95 && s.Metrics.p95 <= s.Metrics.p99);
      Alcotest.(check bool) "bracketed" true
        (s.Metrics.min <= s.Metrics.p50 && s.Metrics.p99 <= s.Metrics.max);
      let near q v = Float.abs (v -. (q *. 10_000.0)) < 500.0 in
      Alcotest.(check bool) "p50 near median" true (near 0.50 s.Metrics.p50);
      Alcotest.(check bool) "p95 near rank" true (near 0.95 s.Metrics.p95)
  | _ -> Alcotest.fail "expected histogram"

(* ------------------------------------------------------------------ *)
(* spans *)

let test_span_nesting () =
  let now = ref 0.0 and steps = ref 0 in
  let t = Span.create ~clock:(fun () -> !now) ~steps:(fun () -> !steps) () in
  let r =
    Span.with_ t "outer" (fun () ->
        steps := 2;
        let inner =
          Span.with_ t ~labels:[ ("k", "v") ] "inner" (fun () ->
              now := 0.001;
              steps := 5;
              42)
        in
        steps := 7;
        inner)
  in
  Alcotest.(check int) "thunk result" 42 r;
  match Span.spans t with
  | [ inner; outer ] ->
      (* inner completes first *)
      Alcotest.(check string) "inner name" "inner" inner.Span.name;
      Alcotest.(check int) "inner depth" 1 inner.Span.depth;
      Alcotest.(check int) "inner seq" 0 inner.Span.seq;
      Alcotest.(check int) "inner start" 2 inner.Span.start_step;
      Alcotest.(check int) "inner end" 5 inner.Span.end_step;
      Alcotest.(check int) "inner steps" 3 (Span.steps_of inner);
      Alcotest.(check int) "inner wall" 1_000_000 inner.Span.wall_ns;
      Alcotest.(check string) "outer name" "outer" outer.Span.name;
      Alcotest.(check int) "outer depth" 0 outer.Span.depth;
      Alcotest.(check int) "outer steps" 7 (Span.steps_of outer)
  | l -> Alcotest.failf "expected two spans, got %d" (List.length l)

let test_span_cap () =
  let t = Span.create ~cap:2 ~clock:(fun () -> 0.0) () in
  for _ = 1 to 5 do
    Span.with_ t "s" (fun () -> ())
  done;
  Alcotest.(check int) "kept" 2 (Span.count t);
  Alcotest.(check int) "dropped" 3 (Span.dropped t)

(* ------------------------------------------------------------------ *)
(* JSONL export *)

let test_jsonl_roundtrip () =
  let sink = Sink.default in
  Sink.reset sink;
  Sink.set_meta sink "tool" "test";
  Sink.incr ~labels:[ ("tm", "x") ] "roundtrip_total";
  Sink.observe "roundtrip_ns" 125.5;
  Sink.span "roundtrip.span" (fun () -> ());
  let lines =
    String.split_on_char '\n' (String.trim (Sink.to_jsonl sink))
  in
  Alcotest.(check int) "line count" 4 (List.length lines);
  (* every line parses, and re-printing reproduces it exactly *)
  let parsed =
    List.map
      (fun line ->
        match Obs_json.parse line with
        | Ok j ->
            Alcotest.(check string) "reprint" line (Obs_json.to_string j);
            j
        | Error e -> Alcotest.failf "parse error on %s: %s" line e)
      lines
  in
  let typ j = Option.bind (Obs_json.member "type" j) Obs_json.to_str in
  (match parsed with
  | run :: _ ->
      Alcotest.(check (option string)) "run line" (Some "run") (typ run);
      Alcotest.(check (option string))
        "meta" (Some "test")
        Option.(
          bind (Obs_json.member "meta" run) (Obs_json.member "tool")
          |> Fun.flip bind Obs_json.to_str)
  | [] -> Alcotest.fail "no lines");
  let metric name =
    List.find
      (fun j ->
        typ j = Some "metric"
        && Option.bind (Obs_json.member "name" j) Obs_json.to_str = Some name)
      parsed
  in
  let c = metric "roundtrip_total" in
  Alcotest.(check (option int)) "counter value" (Some 1)
    (Option.bind (Obs_json.member "value" c) Obs_json.to_int);
  Alcotest.(check (option string)) "counter label" (Some "x")
    Option.(
      bind (Obs_json.member "labels" c) (Obs_json.member "tm")
      |> Fun.flip bind Obs_json.to_str);
  let h = metric "roundtrip_ns" in
  Alcotest.(check (option (float 1e-9))) "hist sum" (Some 125.5)
    (Option.bind (Obs_json.member "sum" h) Obs_json.to_float);
  let span =
    List.find (fun j -> typ j = Some "span") parsed
  in
  Alcotest.(check (option string)) "span name" (Some "roundtrip.span")
    (Option.bind (Obs_json.member "name" span) Obs_json.to_str);
  Sink.reset sink

(* ------------------------------------------------------------------ *)
(* simulator integration: replay counters agree with the replay itself *)

let test_replay_counters () =
  let sink = Sink.default in
  Sink.reset sink;
  let x = Item.v "x" in
  let specs =
    [
      { Static_txn.tid = Tid.v 1; pid = 1; reads = [];
        writes = [ (x, Value.int 1) ] };
      { Static_txn.tid = Tid.v 2; pid = 2; reads = [ x ]; writes = [] };
    ]
  in
  let impl = Registry.find_exn "tl-lock" in
  let outcomes = Hashtbl.create 4 in
  let setup mem recorder =
    let handle =
      Txn_api.instantiate impl mem recorder ~items:(Static_txn.items_of specs)
    in
    List.map
      (fun s -> (s.Static_txn.pid, Static_txn.program handle s ~outcomes))
      specs
  in
  let r =
    Sim.replay ~budget:1_000 setup
      [ Schedule.Until_done 1; Schedule.Until_done 2 ]
  in
  let m = Sink.metrics sink in
  let n_steps = List.length r.Sim.log in
  Alcotest.(check int) "mem_steps_total = |log|" n_steps
    (Metrics.sum_counters m "mem_steps_total");
  Alcotest.(check int) "per-pid steps sum to |log|" n_steps
    (Metrics.sum_counters m "sched_pid_steps_total");
  Alcotest.(check int) "per-pid matches steps_of" (r.Sim.steps_of 1)
    (match
       Metrics.find m "sched_pid_steps_total" ~labels:[ ("pid", "1") ]
     with
    | Some (Metrics.VCounter n) -> n
    | _ -> -1);
  Alcotest.(check int) "one replay" 1
    (Metrics.sum_counters m "sim_replay_total");
  Alcotest.(check int) "both txns committed" 2
    (Metrics.sum_counters m "tm_commit_total");
  Alcotest.(check int) "prim counts also sum to |log|" n_steps
    (Metrics.sum_counters m "mem_prim_total");
  (* the replay span was recorded with step bounds *)
  (match
     List.filter (fun s -> s.Span.name = "sim.replay")
       (Span.spans (Sink.tracer sink))
   with
  | [ s ] -> Alcotest.(check int) "span steps" n_steps (Span.steps_of s)
  | l -> Alcotest.failf "expected one sim.replay span, got %d" (List.length l));
  Sink.reset sink

(* the human-readable table surfaces histogram quantiles: `report'
   renders latency distributions through this printer, so the p50/p95/
   p99 columns are part of its contract *)
let test_pp_table_quantiles () =
  let sink = Sink.create () in
  let m = Sink.metrics sink in
  let h = Metrics.histogram m "latency_ns" in
  List.iter (fun v -> Metrics.observe h (float_of_int v)) [ 1; 5; 9 ];
  let out = Fmt.str "%a" Sink.pp_table sink in
  List.iter
    (fun needle ->
      let ok =
        let n = String.length needle and l = String.length out in
        let rec mem i =
          i + n <= l && (String.sub out i n = needle || mem (i + 1))
        in
        mem 0
      in
      Alcotest.(check bool) (needle ^ " in table") true ok)
    [ "latency_ns"; "p50="; "p95="; "p99=" ]

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter aggregation" `Quick
            test_counter_aggregation;
          Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
          QCheck_alcotest.to_alcotest quantile_law;
          Alcotest.test_case "quantiles over cap" `Quick
            test_quantiles_over_cap;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "cap" `Quick test_span_cap;
        ] );
      ( "sink",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "table quantiles" `Quick
            test_pp_table_quantiles;
        ] );
      ( "sim",
        [ Alcotest.test_case "replay counters" `Quick test_replay_counters ] );
    ]
