(* Tests for the incremental engine's cursor API and the sleep-set
   partial-order reduction: fork/resume must agree with whole-schedule
   replay, and the reduced search must enumerate the same set of
   final-history verdicts as the naive DFS while visiting fewer nodes. *)

open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* two independent counters, as in test_runtime *)
let counter_setup steps1 steps2 : Sim.setup =
 fun mem _recorder ->
  let o1 = Memory.alloc mem ~name:"c1" (Value.int 0) in
  let o2 = Memory.alloc mem ~name:"c2" (Value.int 0) in
  [
    (1, fun () -> for i = 1 to steps1 do Proc.write o1 (Value.int i) done);
    (2, fun () -> for i = 1 to steps2 do Proc.write o2 (Value.int i) done);
  ]

let sig_of (r : Sim.result) =
  List.map
    (fun (e : Access_log.entry) ->
      (e.Access_log.pid, Oid.to_int e.Access_log.oid))
    r.Sim.log

let cursor_tests =
  [
    Alcotest.test_case "steps_taken is the log length" `Quick (fun () ->
        let c = Sim.start (counter_setup 3 2) in
        check_int "zero at C0" 0 (Sim.steps_taken c);
        ignore (Sim.step c 1);
        ignore (Sim.step c 2);
        ignore (Sim.step c 1);
        check_int "three steps" 3 (Sim.steps_taken c);
        let r = Sim.snapshot ~flight:false c in
        check_int "matches log" (List.length r.Sim.log) (Sim.steps_taken c));
    Alcotest.test_case "step reports progress truthfully" `Quick (fun () ->
        let c = Sim.start (counter_setup 1 0) in
        check "first step progresses" true (Sim.step c 1);
        check "finished after its single write" true (Sim.finished c 1);
        check "no further progress" false (Sim.step c 1);
        (* an empty-bodied program finishes on being started: that first
           probe is progress (the finished flag flips), later ones not *)
        check "empty body start progresses" true (Sim.step c 2);
        check "then finished" true (Sim.finished c 2);
        check "and stays done" false (Sim.step c 2));
    Alcotest.test_case "fork resumes deterministically (vs replay)" `Quick
      (fun () ->
        let c = Sim.start (counter_setup 4 3) in
        ignore (Sim.step c 1);
        ignore (Sim.step c 2);
        ignore (Sim.step c 1);
        let f = Sim.fork c in
        check "fork is lazy" false (Sim.is_live f);
        (* diverge: the original continues with pid 2, the fork with 1 *)
        ignore (Sim.step c 2);
        ignore (Sim.step f 1);
        let rf = Sim.snapshot ~flight:false f in
        let rr = Sim.replay (counter_setup 4 3) (Sim.path f) in
        check "fork log = replay of its path" true (sig_of rf = sig_of rr);
        let ro = Sim.snapshot ~flight:false c in
        check "original undisturbed" true
          (sig_of ro = [ (1, 0); (2, 1); (1, 0); (2, 1) ]));
    Alcotest.test_case "fork of a fork replays the same world" `Quick
      (fun () ->
        let c = Sim.start (counter_setup 2 2) in
        ignore (Sim.step c 1);
        let f1 = Sim.fork c in
        let f2 = Sim.fork f1 in
        ignore (Sim.step f1 2);
        ignore (Sim.step f2 2);
        check "same continuation, same log" true
          (sig_of (Sim.snapshot ~flight:false f1)
          = sig_of (Sim.snapshot ~flight:false f2)));
  ]

let por_tests =
  [
    Alcotest.test_case "sleep sets prune independent interleavings" `Quick
      (fun () ->
        (* disjoint counters: every interleaving is equivalent, so the
           reduced search must enumerate strictly fewer than the naive
           C(5,3) = 10 complete executions — and count its prunes *)
        let naive =
          Explorer.explore (counter_setup 3 2) ~pids:[ 1; 2 ]
            ~on_execution:(fun _ -> ())
        in
        let reduced =
          Explorer.explore ~por:true (counter_setup 3 2) ~pids:[ 1; 2 ]
            ~on_execution:(fun _ -> ())
        in
        check_int "naive enumerates all" 10 naive.Explorer.executions;
        check "reduced enumerates fewer" true
          (reduced.Explorer.executions < naive.Explorer.executions);
        check "at least one survivor" true (reduced.Explorer.executions >= 1);
        check "prunes counted" true (reduced.Explorer.sleep_pruned > 0);
        check "complete" false reduced.Explorer.truncated);
    Alcotest.test_case "reduced search sees every final state" `Quick
      (fun () ->
        (* conflicting writers on one object: final value depends on
           order, so both final states must survive the reduction *)
        let setup : Sim.setup =
         fun mem _recorder ->
          let o = Memory.alloc mem ~name:"shared" (Value.int 0) in
          [
            (1, fun () -> Proc.write o (Value.int 1));
            (2, fun () -> Proc.write o (Value.int 2));
          ]
        in
        let finals por =
          let acc = ref [] in
          ignore
            (Explorer.explore ~por setup ~pids:[ 1; 2 ]
               ~on_execution:(fun r ->
                 let v =
                   Value.to_int (Memory.peek r.Sim.mem (Oid.of_int 0))
                 in
                 acc := v :: !acc));
          List.sort_uniq compare !acc
        in
        check "same final-state set" true (finals false = finals true));
    Alcotest.test_case "early stop is counted" `Quick (fun () ->
        let stats =
          Explorer.explore_until (counter_setup 3 3) ~pids:[ 1; 2 ]
            ~on_execution:(fun _ -> `Stop)
        in
        check "stopped early" true stats.Explorer.stopped_early;
        check_int "one execution" 1 stats.Explorer.executions;
        let full =
          Explorer.explore_until (counter_setup 2 2) ~pids:[ 1; 2 ]
            ~on_execution:(fun _ -> `Continue)
        in
        check "full search not early-stopped" false
          full.Explorer.stopped_early);
    Alcotest.test_case "exists stops at the first witness" `Quick (fun () ->
        (* the witness predicate is total, so the search must cut after
           exactly one execution rather than sweep all 10 *)
        let stats =
          Explorer.explore_until (counter_setup 3 2) ~pids:[ 1; 2 ]
            ~on_execution:(fun _ -> `Stop)
        in
        check "fewer than the full sweep" true
          (stats.Explorer.executions < 10);
        check "witness exists" true
          (Explorer.exists (counter_setup 3 2) ~pids:[ 1; 2 ] (fun _ -> true)
          <> None));
  ]

(* The load-bearing soundness check: on every registered TM, the reduced
   sweep of the stock writer/reader pair classifies its executions into
   exactly the same set of strongest-condition verdicts as the naive DFS
   — DPOR skips interleavings, never outcomes. *)
let equivalence_tests =
  [
    Alcotest.test_case "DPOR verdict set = naive verdict set (8 TMs)" `Slow
      (fun () ->
        let total_naive = ref 0 and total_por = ref 0 in
        List.iter
          (fun impl ->
            let (module M : Tm_intf.S) = impl in
            let rows_n, st_n = Explore_sweep.run ~por:false impl in
            let rows_p, st_p = Explore_sweep.run ~por:true impl in
            let names rows = List.map fst rows in
            Alcotest.(check (list string))
              (M.name ^ ": verdict sets agree")
              (names rows_n) (names rows_p);
            check (M.name ^ ": no more nodes than naive") true
              (st_p.Explorer.nodes <= st_n.Explorer.nodes);
            total_naive := !total_naive + st_n.Explorer.nodes;
            total_por := !total_por + st_p.Explorer.nodes)
          Registry.all;
        check "strictly fewer nodes in aggregate" true
          (!total_por < !total_naive));
  ]

let () =
  Alcotest.run "explorer"
    [
      ("cursor", cursor_tests);
      ("por", por_tests);
      ("equivalence", equivalence_tests);
    ]
