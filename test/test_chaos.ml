(* Tests for the chaos engine (lib/chaos): fault atoms and their codec,
   deterministic replay of faulted runs, flight-recorder crash marks,
   spurious RMW failure, transaction poison, contention managers and the
   crash-closure checker. *)

open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* -- fault atoms and the schedule codec --------------------------------- *)

let atom_tests =
  [
    Alcotest.test_case "fault atoms round-trip the codec" `Quick (fun () ->
        let atoms =
          [
            Schedule.Steps (1, 7);
            Schedule.Crash 1;
            Schedule.Park 2;
            Schedule.Unpark 2;
            Schedule.Poison 3;
            Schedule.Until_done 2;
          ]
        in
        let s = Schedule.to_string atoms in
        check_string "rendered" "p1:7,p1:!,p2:z,p2:w,p3:~,p2:*" s;
        match Schedule.of_string s with
        | Ok atoms' -> check "parsed back" true (atoms' = atoms)
        | Error e -> Alcotest.failf "parse error: %s" e);
    Alcotest.test_case "bad fault token rejected" `Quick (fun () ->
        check "rejected" true
          (match Schedule.of_string "p1:8,p2:q" with
          | Error _ -> true
          | Ok _ -> false));
  ]

(* -- crash-stop injection ----------------------------------------------- *)

(* two independent writers; p1 is crash-stopped after its first quantum *)
let crash_setup : Sim.setup =
 fun mem _recorder ->
  let o1 = Memory.alloc mem ~name:"o1" (Value.int 0) in
  let o2 = Memory.alloc mem ~name:"o2" (Value.int 0) in
  let writer oid n () =
    for i = 1 to n do
      Proc.write oid (Value.int i)
    done
  in
  [ (1, writer o1 10); (2, writer o2 10) ]

let crash_atoms =
  [
    Schedule.Steps (1, 4);
    Schedule.Steps (2, 4);
    Schedule.Crash 1;
    Schedule.Until_done 1;
    Schedule.Until_done 2;
  ]

let crash_tests =
  [
    Alcotest.test_case "crash-stop halts the victim, spares the rest" `Quick
      (fun () ->
        let r = Sim.replay crash_setup crash_atoms in
        check "completed" true
          (r.Sim.report.Schedule.stop = Schedule.Completed);
        check "crash recorded at step 8" true
          (r.Sim.report.Schedule.crashes = [ (1, 8) ]);
        check_int "victim stopped after its quantum" 4 (r.Sim.steps_of 1);
        check_int "survivor ran to completion" 10 (r.Sim.steps_of 2);
        check "victim never finishes" false (r.Sim.finished 1);
        check "survivor finishes" true (r.Sim.finished 2));
    Alcotest.test_case "crashed replay is deterministic" `Quick (fun () ->
        let entry (e : Access_log.entry) =
          (e.Access_log.pid, e.Access_log.oid, e.Access_log.response)
        in
        let r1 = Sim.replay crash_setup crash_atoms in
        let r2 = Sim.replay crash_setup crash_atoms in
        check "identical logs" true
          (List.map entry r1.Sim.log = List.map entry r2.Sim.log);
        check "identical crash reports" true
          (r1.Sim.report.Schedule.crashes = r2.Sim.report.Schedule.crashes));
    Alcotest.test_case "flight recorder marks the crash step" `Quick
      (fun () ->
        let fl = Flight.create () in
        let r =
          Flight.with_recorder fl (fun () ->
              Sim.replay crash_setup crash_atoms)
        in
        let pid, step = List.hd r.Sim.report.Schedule.crashes in
        check "meta records the injected crash" true
          (Flight.meta_value fl "crashes"
          = Some (Printf.sprintf "p%d@%d" pid step));
        check "schedule meta keeps the crash atom" true
          (match Flight.meta_value fl "schedule" with
          | Some s ->
              List.exists (( = ) "p1:!") (String.split_on_char ',' s)
          | None -> false));
  ]

(* -- spurious RMW failure ----------------------------------------------- *)

let spurious_tests =
  [
    Alcotest.test_case "spurious fault fails RMW only, leaves state" `Quick
      (fun () ->
        let mem = Memory.create () in
        let x = Memory.alloc mem ~name:"x" (Value.int 0) in
        Memory.set_fault_hook mem (fun ~pid:_ ~tid:_ ~step:_ _ _ ->
            Some Memory.Spurious_fail);
        let cas =
          Memory.apply mem ~pid:1 x
            (Primitive.Cas { expected = Value.int 0; desired = Value.int 9 })
        in
        check "cas reports failure" true (cas = Value.bool false);
        check "state untouched" true (Memory.peek mem x = Value.int 0);
        (* non-RMW primitives ignore the hook entirely *)
        ignore (Memory.apply mem ~pid:1 x (Primitive.Write (Value.int 5)));
        check "write still lands" true (Memory.peek mem x = Value.int 5);
        check "read unaffected" true
          (Memory.apply mem ~pid:1 x Primitive.Read = Value.int 5));
  ]

(* -- transaction poison ------------------------------------------------- *)

let bump item txn =
  let v = Atomically.read txn item in
  Atomically.write txn item
    (Value.int (1 + Option.value ~default:0 (Value.to_int v)));
  Atomically.Done ()

let poison_tests =
  [
    Alcotest.test_case "poison forces one abort, then the retry commits"
      `Quick (fun () ->
        let impl = Registry.find_exn "tl-lock" in
        let item = Item.v "x" in
        let aborts = ref 0 and committed = ref false in
        let setup mem recorder =
          let handle = Txn_api.instantiate impl mem recorder ~items:[ item ] in
          [
            ( 1,
              fun () ->
                Atomically.run handle ~pid:1
                  ~on_abort:(fun ~attempt:_ ->
                    incr aborts;
                    true)
                  (bump item);
                committed := true );
          ]
        in
        let r =
          Sim.replay setup [ Schedule.Poison 1; Schedule.Until_done 1 ]
        in
        check "completed" true
          (r.Sim.report.Schedule.stop = Schedule.Completed);
        check_int "exactly one forced abort" 1 !aborts;
        check "retry commits" true !committed;
        let h = r.Sim.history in
        check "history shows one aborted and one committed txn" true
          (List.length (List.filter (History.aborted h) (History.txns h))
           = 1
          && List.length
               (List.filter (History.committed h) (History.txns h))
             = 1));
  ]

(* -- contention managers ------------------------------------------------ *)

(* One process, candidate TM, spurious CAS failure for the whole
   [Fault.spurious_window].  An impatient policy burns all its attempts
   inside the window and gives up — the injected livelock; a backoff
   policy spends the window waiting and commits once it closes.  This is
   the chaos engine's reason to exist: the contention manager converts a
   transient-fault livelock into a commit. *)
let run_under_spurious policy =
  let impl = Registry.find_exn "candidate" in
  let inst =
    Fault.instantiate Fault.Spurious_rmw ~seed:1 ~pids:[ 1 ] ~rounds:8
  in
  let item = Item.v "x" in
  let outcome = ref None in
  let setup mem recorder =
    (match inst.Fault.hook with
    | Some h -> Memory.set_fault_hook mem h
    | None -> assert false);
    let handle = Txn_api.instantiate impl mem recorder ~items:[ item ] in
    let scratch = Cm.scratch mem in
    [
      ( 1,
        fun () ->
          outcome :=
            Some
              (Cm.atomically policy ~scratch ~seed:7 ~tm:"candidate" handle
                 ~pid:1 (bump item)) );
    ]
  in
  let r = Sim.replay ~budget:60_000 setup [ Schedule.Until_done 1 ] in
  check "completed" true (r.Sim.report.Schedule.stop = Schedule.Completed);
  Option.get !outcome

let cm_tests =
  [
    Alcotest.test_case "immediate retry gives up inside the fault window"
      `Quick (fun () ->
        check "gave up" true
          (match run_under_spurious Cm.immediate with
          | Cm.Gave_up _ -> true
          | Cm.Committed _ -> false));
    Alcotest.test_case "backoff outlasts the fault window and commits"
      `Quick (fun () ->
        check "committed" true
          (match run_under_spurious Cm.backoff with
          | Cm.Committed ((), _) -> true
          | Cm.Gave_up _ -> false));
    Alcotest.test_case "policy decisions are deterministic per seed" `Quick
      (fun () ->
        let decide seed =
          Cm.backoff.Cm.decide
            { Cm.attempt = 3; karma = 0; rand = Chaos_prng.create seed }
        in
        check "same seed, same decision" true (decide 42 = decide 42));
  ]

(* -- crash-closure ------------------------------------------------------ *)

let closure_tests =
  [
    Alcotest.test_case "cuts: crash steps plus quartiles, in range" `Quick
      (fun () ->
        check "deduplicated and bounded" true
          (Crash_closure.cuts ~crash_steps:[ 42; 42; 0; 100 ] ~last:100
          = [ 25; 42; 50; 75 ]));
    Alcotest.test_case "truncate_at keeps only events before the cut" `Quick
      (fun () ->
        let impl = Registry.find_exn "tl-lock" in
        let item = Item.v "x" in
        let setup mem recorder =
          let handle = Txn_api.instantiate impl mem recorder ~items:[ item ] in
          let client pid () = Atomically.run handle ~pid (bump item) in
          [ (1, client 1); (2, client 2) ]
        in
        let r =
          Sim.replay setup [ Schedule.Until_done 1; Schedule.Until_done 2 ]
        in
        let cut = List.length r.Sim.log / 2 in
        let h = History.truncate_at r.Sim.history cut in
        check "nonempty" false (History.is_empty h);
        check "a proper prefix" true
          (History.length h < History.length r.Sim.history);
        check "all events at or before the cut" true
          (List.for_all (fun e -> Event.at e <= cut) (History.events h)));
    Alcotest.test_case "stock TM verdicts are crash-closed" `Quick (fun () ->
        let impl = Registry.find_exn "tl-lock" in
        let cell =
          Chaos_run.run_cell Chaos_run.small impl Fault.Crash_stop
            Cm.immediate
        in
        check_int "no violations" 0 cell.Chaos_run.closure_violations;
        check "crash actually landed" true (cell.Chaos_run.crashes >= 1));
  ]

let () =
  Alcotest.run "chaos"
    [
      ("atoms", atom_tests);
      ("crash", crash_tests);
      ("spurious", spurious_tests);
      ("poison", poison_tests);
      ("cm", cm_tests);
      ("closure", closure_tests);
    ]
