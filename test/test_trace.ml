(* Unit tests for histories, well-formedness, legality (tm_trace). *)

open Core
open Build

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let h instrs = Build.history instrs

let simple =
  h [ B (1, 1); W (1, "x", 1); C 1; B (2, 2); R (2, "x", 1); C 2 ]

let history_tests =
  [
    Alcotest.test_case "txns in first-event order" `Quick (fun () ->
        check "order" true (History.txns simple = [ Tid.v 1; Tid.v 2 ]));
    Alcotest.test_case "per_txn projects H|T" `Quick (fun () ->
        check_int "T1 events" 6 (List.length (History.per_txn simple (Tid.v 1)));
        check_int "T2 events" 6 (List.length (History.per_txn simple (Tid.v 2))));
    Alcotest.test_case "status detection" `Quick (fun () ->
        let hh =
          h [ B (1, 1); W (1, "x", 1); C 1;
              B (2, 2); Ca 2;
              B (3, 3); Cp 3;
              B (4, 4); R (4, "x", 1) ]
        in
        check "committed" true (History.committed hh (Tid.v 1));
        check "aborted" true (History.aborted hh (Tid.v 2));
        check "commit-pending" true (History.commit_pending hh (Tid.v 3));
        check "live" true (History.status hh (Tid.v 4) = History.Live);
        check "pending is live" true (History.live hh (Tid.v 3));
        check "committed not live" false (History.live hh (Tid.v 1)));
    Alcotest.test_case "precedes and concurrent" `Quick (fun () ->
        check "T1 < T2" true (History.precedes simple (Tid.v 1) (Tid.v 2));
        check "not T2 < T1" false (History.precedes simple (Tid.v 2) (Tid.v 1));
        check "not concurrent" false
          (History.concurrent simple (Tid.v 1) (Tid.v 2));
        let conc = h [ B (1, 1); B (2, 2); W (1, "x", 1); C 1; C 2 ] in
        check "concurrent" true (History.concurrent conc (Tid.v 1) (Tid.v 2));
        check "no precede" false (History.precedes conc (Tid.v 1) (Tid.v 2)));
    Alcotest.test_case "live transactions never precede" `Quick (fun () ->
        let hh = h [ B (1, 1); W (1, "x", 1); B (2, 2); C 2 ] in
        check "live no precede" false (History.precedes hh (Tid.v 1) (Tid.v 2)));
    Alcotest.test_case "sequential detection" `Quick (fun () ->
        check "simple sequential" true (History.sequential simple);
        let conc = h [ B (1, 1); B (2, 2); C 1; C 2 ] in
        check "interleaved not sequential" false (History.sequential conc));
    Alcotest.test_case "begin_order" `Quick (fun () ->
        let hh = h [ B (3, 3); B (1, 1); C 3; B (2, 2); C 1; C 2 ] in
        check "order" true
          (History.begin_order hh = [ Tid.v 3; Tid.v 1; Tid.v 2 ]));
    Alcotest.test_case "reads: global vs local" `Quick (fun () ->
        let hh =
          h [ B (1, 1); R (1, "x", 0); W (1, "x", 5); R (1, "x", 5);
              R (1, "y", 0); C 1 ]
        in
        let reads = History.reads hh (Tid.v 1) in
        check_int "three reads" 3 (List.length reads);
        let globals = History.global_reads hh (Tid.v 1) in
        check_int "two global" 2 (List.length globals);
        check "x then y" true
          (List.map fst globals = [ Item.v "x"; Item.v "y" ]));
    Alcotest.test_case "writes in order, write_set" `Quick (fun () ->
        let hh =
          h [ B (1, 1); W (1, "x", 1); W (1, "y", 2); W (1, "x", 3); C 1 ]
        in
        check "writes" true
          (History.writes hh (Tid.v 1)
          = [ (Item.v "x", Value.int 1); (Item.v "y", Value.int 2);
              (Item.v "x", Value.int 3) ]);
        check "write_set" true
          (Item.Set.equal (History.write_set hh (Tid.v 1))
             (Item.set_of_list [ Item.v "x"; Item.v "y" ])));
    Alcotest.test_case "writes_to_common_item" `Quick (fun () ->
        let hh =
          h [ B (1, 1); W (1, "x", 1); C 1; B (2, 2); W (2, "x", 2); C 2;
              B (3, 3); W (3, "y", 1); C 3 ]
        in
        check "1-2 common" true
          (History.writes_to_common_item hh (Tid.v 1) (Tid.v 2));
        check "1-3 disjoint" false
          (History.writes_to_common_item hh (Tid.v 1) (Tid.v 3)));
    Alcotest.test_case "restrict keeps only selected txns" `Quick (fun () ->
        let sub = History.restrict simple (Tid.Set.of_list [ Tid.v 2 ]) in
        check "only T2" true (History.txns sub = [ Tid.v 2 ]);
        check_int "length" 6 (History.length sub));
    Alcotest.test_case "positions" `Quick (fun () ->
        check "T1 first" true (History.first_pos simple (Tid.v 1) = Some 0);
        check "T1 last" true (History.last_pos simple (Tid.v 1) = Some 5);
        check "T2 span" true
          (History.positions_of_txn simple (Tid.v 2) = Some (6, 11)));
  ]

let wf_tests =
  [
    Alcotest.test_case "catalogue histories are well-formed" `Quick (fun () ->
        List.iter
          (fun (a : Anomalies.anomaly) ->
            match History.well_formed a.Anomalies.history with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: %s" a.Anomalies.name e)
          Anomalies.catalogue);
    Alcotest.test_case "missing begin rejected" `Quick (fun () ->
        let bad =
          History.of_list
            [ Event.Inv { tid = Tid.v 1; pid = 1; op = Event.Read (Item.v "x");
                          at = 0 } ]
        in
        check "rejected" true (Result.is_error (History.well_formed bad)));
    Alcotest.test_case "event after commit rejected" `Quick (fun () ->
        let ok = h [ B (1, 1); C 1 ] in
        let bad =
          History.append ok
            [ Event.Inv { tid = Tid.v 1; pid = 1; op = Event.Read (Item.v "x");
                          at = 9 } ]
        in
        check "base fine" true (Result.is_ok (History.well_formed ok));
        check "rejected" true (Result.is_error (History.well_formed bad)));
    Alcotest.test_case "double invocation rejected" `Quick (fun () ->
        let bad =
          History.of_list
            [ Event.Inv { tid = Tid.v 1; pid = 1; op = Event.Begin; at = 0 };
              Event.Resp { tid = Tid.v 1; pid = 1; op = Event.Begin;
                           resp = Event.R_ok; at = 0 };
              Event.Inv { tid = Tid.v 1; pid = 1; op = Event.Read (Item.v "x");
                          at = 0 };
              Event.Inv { tid = Tid.v 1; pid = 1; op = Event.Read (Item.v "y");
                          at = 0 } ]
        in
        check "rejected" true (Result.is_error (History.well_formed bad)));
    Alcotest.test_case "process interleaving its own txns rejected" `Quick
      (fun () ->
        let bad =
          History.of_list
            [ Event.Inv { tid = Tid.v 1; pid = 1; op = Event.Begin; at = 0 };
              Event.Resp { tid = Tid.v 1; pid = 1; op = Event.Begin;
                           resp = Event.R_ok; at = 0 };
              Event.Inv { tid = Tid.v 2; pid = 1; op = Event.Begin; at = 0 };
              Event.Resp { tid = Tid.v 2; pid = 1; op = Event.Begin;
                           resp = Event.R_ok; at = 0 } ]
        in
        check "rejected" true (Result.is_error (History.well_formed bad)));
    Alcotest.test_case "ill-typed response rejected" `Quick (fun () ->
        let bad =
          History.of_list
            [ Event.Inv { tid = Tid.v 1; pid = 1; op = Event.Begin; at = 0 };
              Event.Resp { tid = Tid.v 1; pid = 1; op = Event.Begin;
                           resp = Event.R_committed; at = 0 } ]
        in
        check "rejected" true (Result.is_error (History.well_formed bad)));
  ]

let legality_tests =
  [
    Alcotest.test_case "reading initial value is legal" `Quick (fun () ->
        check "legal" true
          (Legality.legal (h [ B (1, 1); R (1, "x", 0); C 1 ])));
    Alcotest.test_case "reading committed write is legal" `Quick (fun () ->
        check "legal" true (Legality.legal simple));
    Alcotest.test_case "stale read is illegal sequentially" `Quick (fun () ->
        let bad =
          h [ B (1, 1); W (1, "x", 1); C 1; B (2, 2); R (2, "x", 0); C 2 ]
        in
        check "illegal" false (Legality.legal bad);
        match Legality.check bad with
        | Error v ->
            check "culprit txn" true (Tid.equal v.Legality.tid (Tid.v 2));
            check "expected 1" true
              (Value.equal v.Legality.expected (Value.int 1))
        | Ok () -> Alcotest.fail "expected violation");
    Alcotest.test_case "read your own write" `Quick (fun () ->
        check "legal" true
          (Legality.legal (h [ B (1, 1); W (1, "x", 7); R (1, "x", 7); C 1 ]));
        check "illegal" false
          (Legality.legal (h [ B (1, 1); W (1, "x", 7); R (1, "x", 0); C 1 ])));
    Alcotest.test_case "last write wins" `Quick (fun () ->
        check "legal" true
          (Legality.legal
             (h [ B (1, 1); W (1, "x", 1); W (1, "x", 2); C 1;
                  B (2, 2); R (2, "x", 2); C 2 ])));
    Alcotest.test_case "aborted writes are invisible" `Quick (fun () ->
        check "legal" true
          (Legality.legal
             (h [ B (1, 1); W (1, "x", 1); Ca 1; B (2, 2); R (2, "x", 0); C 2 ]));
        check "illegal to see them" false
          (Legality.legal
             (h [ B (1, 1); W (1, "x", 1); Ca 1; B (2, 2); R (2, "x", 1); C 2 ])));
    Alcotest.test_case "custom initial values" `Quick (fun () ->
        let hh = h [ B (1, 1); R (1, "x", 42); C 1 ] in
        check "default illegal" false (Legality.legal hh);
        check "custom legal" true
          (Legality.legal ~initial:(fun _ -> Value.int 42) hh));
    Alcotest.test_case "non-sequential history rejected" `Quick (fun () ->
        let conc = h [ B (1, 1); B (2, 2); C 1; C 2 ] in
        check "raises" true
          (try
             ignore (Legality.check conc);
             false
           with Invalid_argument _ -> true));
  ]

(* property: histories produced by replaying a faithful sequential store
   are always well-formed and legal *)
let gen_legal_instrs : Build.instr list QCheck.Gen.t =
 fun st ->
  let items = [| "x"; "y"; "z" |] in
  let n = 1 + Random.State.int st 4 in
  let store = Hashtbl.create 8 in
  let instrs = ref [] in
  for k = 1 to n do
    instrs := B (k, k) :: !instrs;
    let local = Hashtbl.copy store in
    let ops = 1 + Random.State.int st 3 in
    for _ = 1 to ops do
      let item = items.(Random.State.int st (Array.length items)) in
      if Random.State.bool st then begin
        let v = 1 + Random.State.int st 9 in
        Hashtbl.replace local item v;
        instrs := W (k, item, v) :: !instrs
      end
      else
        let cur = Option.value ~default:0 (Hashtbl.find_opt local item) in
        instrs := R (k, item, cur) :: !instrs
    done;
    if Random.State.bool st then begin
      Hashtbl.reset store;
      Hashtbl.iter (fun key v -> Hashtbl.replace store key v) local;
      instrs := C k :: !instrs
    end
    else instrs := Ca k :: !instrs
  done;
  List.rev !instrs

let prop_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200
         ~name:"replayed sequential histories are well-formed and legal"
         (QCheck.make gen_legal_instrs)
         (fun instrs ->
           let hh = Build.history instrs in
           Result.is_ok (History.well_formed hh) && Legality.legal hh));
  ]


(* ------------------------------------------------------------------ *)
(* wire format *)

let normalize hh =
  History.of_list
    (List.map
       (fun e ->
         match e with
         | Event.Inv { tid; pid; op; _ } -> Event.Inv { tid; pid; op; at = 0 }
         | Event.Resp { tid; pid; op; resp; _ } ->
             Event.Resp { tid; pid; op; resp; at = 0 })
       (History.to_list hh))

let roundtrip hh =
  match Wire.parse (Wire.print hh) with
  | Ok hh' ->
      List.for_all2 Event.equal
        (History.to_list (normalize hh))
        (History.to_list (normalize hh'))
  | Error _ -> false

let wire_tests =
  [
    Alcotest.test_case "catalogue histories round-trip" `Quick (fun () ->
        List.iter
          (fun (a : Anomalies.anomaly) ->
            if not (roundtrip a.Anomalies.history) then
              Alcotest.failf "%s does not round-trip" a.Anomalies.name)
          Anomalies.catalogue);
    Alcotest.test_case "comments and whitespace tolerated" `Quick (fun () ->
        let text =
          "# a comment\n+b1@1 -ok1\t+w1(x)=5\n-ok1 +c1 -C1  # trailing"
        in
        match Wire.parse text with
        | Ok hh ->
            check "well-formed" true (Result.is_ok (History.well_formed hh));
            check "one committed txn" true (History.committed hh (Tid.v 1))
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "bad tokens are reported" `Quick (fun () ->
        check "unknown token" true (Result.is_error (Wire.parse "xyz"));
        check "txn before begin" true (Result.is_error (Wire.parse "+r1(x)"));
        check "response without inv" true
          (Result.is_error (Wire.parse "+b1@1 -ok1 -v1=0")));
    Alcotest.test_case "non-integer values are rejected by print" `Quick
      (fun () ->
        let hh =
          History.of_list
            [ Event.Inv { tid = Tid.v 1; pid = 1; op = Event.Begin; at = 0 };
              Event.Resp { tid = Tid.v 1; pid = 1; op = Event.Begin;
                           resp = Event.R_ok; at = 0 };
              Event.Inv { tid = Tid.v 1; pid = 1;
                          op = Event.Write (Item.v "x", Value.bool true);
                          at = 0 } ]
        in
        check "raises" true
          (try
             ignore (Wire.print hh);
             false
           with Invalid_argument _ -> true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150 ~name:"random histories round-trip"
         (QCheck.make gen_legal_instrs)
         (fun instrs -> roundtrip (Build.history instrs)));
  ]

(* the recorder packs events into flat columns; whatever goes in through
   [add] or the specialized entry points must come back out of [history]
   as the same [Event.t] values in order *)
let recorder_tests =
  [
    Alcotest.test_case "columns round-trip to events" `Quick (fun () ->
        let r = Recorder.create () in
        let t1 = Tid.v 1 and t2 = Tid.v 2 in
        let x = Item.v "x" and y = Item.v "y" in
        let expected =
          [
            Event.Inv { tid = t1; pid = 1; op = Event.Begin; at = 0 };
            Event.Resp
              { tid = t1; pid = 1; op = Event.Begin; resp = Event.R_ok;
                at = 0 };
            Event.Inv { tid = t1; pid = 1; op = Event.Read x; at = 1 };
            Event.Resp
              { tid = t1; pid = 1; op = Event.Read x;
                resp = Event.R_value (Value.int 7); at = 2 };
            Event.Inv
              { tid = t2; pid = 2; op = Event.Write (y, Value.int 3);
                at = 3 };
            Event.Resp
              { tid = t2; pid = 2; op = Event.Write (y, Value.int 3);
                resp = Event.R_aborted; at = 4 };
            Event.Inv { tid = t1; pid = 1; op = Event.Try_commit; at = 5 };
            Event.Resp
              { tid = t1; pid = 1; op = Event.Try_commit;
                resp = Event.R_committed; at = 6 };
          ]
        in
        (* the first four through the generic/specialized inv/resp mix,
           the rest through [add] *)
        Recorder.inv r ~tid:t1 ~pid:1 ~at:0 Event.Begin;
        Recorder.resp r ~tid:t1 ~pid:1 ~at:0 Event.Begin Event.R_ok;
        Recorder.inv_read r ~tid:t1 ~pid:1 ~at:1 x;
        Recorder.resp_read_value r ~tid:t1 ~pid:1 ~at:2 x (Value.int 7);
        Recorder.inv_write r ~tid:t2 ~pid:2 ~at:3 y (Value.int 3);
        Recorder.resp_write_aborted r ~tid:t2 ~pid:2 ~at:4 y (Value.int 3);
        List.iter (Recorder.add r) (List.filteri (fun i _ -> i >= 6) expected);
        Alcotest.(check int) "length" 8 (Recorder.length r);
        check "events" true
          (History.events (Recorder.history r) = expected));
    Alcotest.test_case "out-of-range pid is rejected" `Quick (fun () ->
        let r = Recorder.create () in
        check "raises" true
          (try
             Recorder.inv r ~tid:(Tid.v 1) ~pid:5000 ~at:0 Event.Begin;
             false
           with Invalid_argument _ -> true));
  ]

let () =
  Alcotest.run "trace"
    [
      ("history", history_tests);
      ("recorder", recorder_tests);
      ("well-formed", wf_tests);
      ("legality", legality_tests);
      ("properties", prop_tests);
      ("wire", wire_tests);
    ]
