(* Unit and property tests for the shared-memory substrate (tm_base). *)

open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let value_tests =
  [
    Alcotest.test_case "initial value is 0" `Quick (fun () ->
        check "initial" true (Value.equal Value.initial (Value.int 0)));
    Alcotest.test_case "equal structural" `Quick (fun () ->
        check "pair eq" true
          (Value.equal
             (Value.pair (Value.int 1) (Value.bool true))
             (Value.pair (Value.int 1) (Value.bool true)));
        check "pair neq" false
          (Value.equal
             (Value.pair (Value.int 1) (Value.bool true))
             (Value.pair (Value.int 2) (Value.bool true))));
    Alcotest.test_case "to_int on ints only" `Quick (fun () ->
        check_int "int" 7 (Value.to_int_exn (Value.int 7));
        check "none" true (Value.to_int (Value.bool true) = None);
        Alcotest.check_raises "exn" (Invalid_argument "Value.to_int_exn: (VBool true)")
          (fun () -> ignore (Value.to_int_exn (Value.bool true))));
    Alcotest.test_case "to_pair/to_list" `Quick (fun () ->
        let p = Value.pair (Value.int 1) (Value.int 2) in
        check "pair" true (Value.to_pair_exn p = (Value.int 1, Value.int 2));
        let l = Value.list [ Value.int 1 ] in
        check "list" true (Value.to_list_exn l = [ Value.int 1 ]));
    Alcotest.test_case "compact printing" `Quick (fun () ->
        check_str "int" "7" (Value.to_string (Value.int 7));
        check_str "pair" "(1,true)"
          (Value.to_string (Value.pair (Value.int 1) (Value.bool true)));
        check_str "list" "[1;2]"
          (Value.to_string (Value.list [ Value.int 1; Value.int 2 ])));
  ]

let primitive_tests =
  [
    Alcotest.test_case "triviality classification" `Quick (fun () ->
        check "read trivial" true (Primitive.trivial Primitive.Read);
        check "ll trivial" true (Primitive.trivial (Primitive.Load_linked 1));
        check "write non-trivial" true
          (Primitive.non_trivial (Primitive.Write Value.unit));
        check "cas non-trivial" true
          (Primitive.non_trivial
             (Primitive.Cas { expected = Value.unit; desired = Value.unit }));
        check "faa non-trivial" true
          (Primitive.non_trivial (Primitive.Fetch_add 0));
        check "trylock non-trivial" true
          (Primitive.non_trivial (Primitive.Try_lock 1));
        check "unlock non-trivial" true
          (Primitive.non_trivial (Primitive.Unlock 1));
        check "sc non-trivial" true
          (Primitive.non_trivial (Primitive.Store_conditional (1, Value.unit))));
  ]

let obj () = Base_object.create (Value.int 0)

let base_object_tests =
  [
    Alcotest.test_case "read returns state, unchanged" `Quick (fun () ->
        let o = obj () in
        let v, changed = Base_object.apply o Primitive.Read in
        check "value" true (Value.equal v (Value.int 0));
        check "unchanged" false changed);
    Alcotest.test_case "write updates, reports change" `Quick (fun () ->
        let o = obj () in
        let _, ch1 = Base_object.apply o (Primitive.Write (Value.int 5)) in
        check "changed" true ch1;
        let _, ch2 = Base_object.apply o (Primitive.Write (Value.int 5)) in
        check "same value unchanged" false ch2;
        check "state" true (Value.equal (Base_object.value o) (Value.int 5)));
    Alcotest.test_case "cas succeeds iff expected matches" `Quick (fun () ->
        let o = obj () in
        let r, _ =
          Base_object.apply o
            (Primitive.Cas { expected = Value.int 0; desired = Value.int 1 })
        in
        check "success" true (Value.to_bool_exn r);
        let r, ch =
          Base_object.apply o
            (Primitive.Cas { expected = Value.int 0; desired = Value.int 2 })
        in
        check "failure" false (Value.to_bool_exn r);
        check "failure no change" false ch;
        check "state" true (Value.equal (Base_object.value o) (Value.int 1)));
    Alcotest.test_case "fetch_add returns old value" `Quick (fun () ->
        let o = obj () in
        let r, _ = Base_object.apply o (Primitive.Fetch_add 3) in
        check_int "old" 0 (Value.to_int_exn r);
        let r, _ = Base_object.apply o (Primitive.Fetch_add 4) in
        check_int "old2" 3 (Value.to_int_exn r);
        check_int "state" 7 (Value.to_int_exn (Base_object.value o)));
    Alcotest.test_case "fetch_add 0 reports no change" `Quick (fun () ->
        let o = obj () in
        let _, ch = Base_object.apply o (Primitive.Fetch_add 0) in
        check "unchanged" false ch);
    Alcotest.test_case "locks are exclusive and reentrant-aware" `Quick
      (fun () ->
        let o = obj () in
        let r, _ = Base_object.apply o (Primitive.Try_lock 1) in
        check "p1 acquires" true (Value.to_bool_exn r);
        let r, _ = Base_object.apply o (Primitive.Try_lock 2) in
        check "p2 denied" false (Value.to_bool_exn r);
        let r, _ = Base_object.apply o (Primitive.Try_lock 1) in
        check "p1 re-acquires (held)" true (Value.to_bool_exn r);
        check "holder" true (Base_object.lock_holder o = Some 1));
    Alcotest.test_case "unlock by non-holder is a no-op" `Quick (fun () ->
        let o = obj () in
        ignore (Base_object.apply o (Primitive.Try_lock 1));
        let _, ch = Base_object.apply o (Primitive.Unlock 2) in
        check "no change" false ch;
        check "still held" true (Base_object.locked o);
        ignore (Base_object.apply o (Primitive.Unlock 1));
        check "released" false (Base_object.locked o));
    Alcotest.test_case "ll/sc succeeds when undisturbed" `Quick (fun () ->
        let o = obj () in
        let v, ch = Base_object.apply o (Primitive.Load_linked 1) in
        check "ll reads" true (Value.equal v (Value.int 0));
        check "ll trivial effect" false ch;
        let r, _ =
          Base_object.apply o (Primitive.Store_conditional (1, Value.int 9))
        in
        check "sc ok" true (Value.to_bool_exn r);
        check "state" true (Value.equal (Base_object.value o) (Value.int 9)));
    Alcotest.test_case "sc without reservation fails" `Quick (fun () ->
        let o = obj () in
        let r, ch =
          Base_object.apply o (Primitive.Store_conditional (1, Value.int 9))
        in
        check "sc fails" false (Value.to_bool_exn r);
        check "no change" false ch);
    Alcotest.test_case "write invalidates ll reservation" `Quick (fun () ->
        let o = obj () in
        ignore (Base_object.apply o (Primitive.Load_linked 1));
        ignore (Base_object.apply o (Primitive.Write (Value.int 5)));
        let r, _ =
          Base_object.apply o (Primitive.Store_conditional (1, Value.int 9))
        in
        check "sc fails" false (Value.to_bool_exn r));
    Alcotest.test_case "successful cas invalidates ll reservation" `Quick
      (fun () ->
        let o = obj () in
        ignore (Base_object.apply o (Primitive.Load_linked 1));
        ignore
          (Base_object.apply o
             (Primitive.Cas { expected = Value.int 0; desired = Value.int 1 }));
        let r, _ =
          Base_object.apply o (Primitive.Store_conditional (1, Value.int 9))
        in
        check "sc fails" false (Value.to_bool_exn r));
    Alcotest.test_case "sc invalidates other reservations" `Quick (fun () ->
        let o = obj () in
        ignore (Base_object.apply o (Primitive.Load_linked 1));
        ignore (Base_object.apply o (Primitive.Load_linked 2));
        let r, _ =
          Base_object.apply o (Primitive.Store_conditional (1, Value.int 5))
        in
        check "first sc ok" true (Value.to_bool_exn r);
        let r, _ =
          Base_object.apply o (Primitive.Store_conditional (2, Value.int 6))
        in
        check "second sc fails" false (Value.to_bool_exn r));
  ]

let memory_tests =
  [
    Alcotest.test_case "alloc/find/name round trip" `Quick (fun () ->
        let m = Memory.create () in
        let a = Memory.alloc m ~name:"a" (Value.int 1) in
        let b = Memory.alloc m ~name:"b" (Value.int 2) in
        check "find a" true (Memory.find m "a" = Some a);
        check "find b" true (Memory.find m "b" = Some b);
        check "find missing" true (Memory.find m "c" = None);
        check_str "name_of" "b" (Memory.name_of m b);
        check_int "n_objects" 2 (Memory.n_objects m));
    Alcotest.test_case "duplicate name rejected" `Quick (fun () ->
        let m = Memory.create () in
        ignore (Memory.alloc m ~name:"a" Value.unit);
        check "raises" true
          (try
             ignore (Memory.alloc m ~name:"a" Value.unit);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "many allocations grow the table" `Quick (fun () ->
        let m = Memory.create () in
        for i = 0 to 99 do
          ignore (Memory.alloc m ~name:(Printf.sprintf "o%d" i) (Value.int i))
        done;
        check_int "count" 100 (Memory.n_objects m);
        check "values" true
          (Value.equal (Memory.peek m (Memory.find_exn m "o57")) (Value.int 57)));
    Alcotest.test_case "apply logs steps in order" `Quick (fun () ->
        let m = Memory.create () in
        let a = Memory.alloc m ~name:"a" (Value.int 0) in
        ignore (Memory.apply m ~pid:1 a (Primitive.Write (Value.int 1)));
        ignore (Memory.apply m ~pid:2 ~tid:(Tid.v 9) a Primitive.Read);
        let log = Access_log.entries (Memory.log m) in
        check_int "length" 2 (List.length log);
        let e0 = List.nth log 0 and e1 = List.nth log 1 in
        check_int "idx0" 0 e0.Access_log.index;
        check_int "idx1" 1 e1.Access_log.index;
        check_int "pid" 2 e1.Access_log.pid;
        check "tid" true (e1.Access_log.tid = Some (Tid.v 9));
        check "response" true (Value.equal e1.Access_log.response (Value.int 1));
        check_int "step_count" 2 (Memory.step_count m));
    Alcotest.test_case "peek is not logged" `Quick (fun () ->
        let m = Memory.create () in
        let a = Memory.alloc m ~name:"a" (Value.int 0) in
        ignore (Memory.peek m a);
        check_int "no steps" 0 (Memory.step_count m));
    Alcotest.test_case "by_txn and objects_of_txn" `Quick (fun () ->
        let m = Memory.create () in
        let a = Memory.alloc m ~name:"a" (Value.int 0) in
        let b = Memory.alloc m ~name:"b" (Value.int 0) in
        ignore (Memory.apply m ~pid:1 ~tid:(Tid.v 1) a Primitive.Read);
        ignore
          (Memory.apply m ~pid:1 ~tid:(Tid.v 1) b (Primitive.Write (Value.int 2)));
        ignore (Memory.apply m ~pid:2 ~tid:(Tid.v 2) a Primitive.Read);
        check_int "t1 steps" 2 (List.length (Access_log.by_txn (Memory.log m) (Tid.v 1)));
        let objs = Access_log.objects_of_txn (Memory.log m) (Tid.v 1) in
        check "a trivial" true (Oid.Map.find a objs = false);
        check "b non-trivial" true (Oid.Map.find b objs = true));
  ]

(* chunked vectors: growth must be seamless across chunk boundaries, so
   drive them with tiny chunks (chunk_bits:2 = 4-element chunks) and
   cross many boundaries *)

let vec_tests =
  [
    Alcotest.test_case "intvec growth across chunk boundaries" `Quick
      (fun () ->
        let v = Intvec.create ~chunk_bits:2 () in
        for i = 0 to 99 do
          Intvec.push v (i * 3);
          check_int "length tracks pushes" (i + 1) (Intvec.length v)
        done;
        for i = 0 to 99 do
          check_int "get" (i * 3) (Intvec.get v i);
          check_int "unsafe_get" (i * 3) (Intvec.unsafe_get v i)
        done;
        check "to_list" true
          (Intvec.to_list v = List.init 100 (fun i -> i * 3)));
    Alcotest.test_case "intvec set/get bounds" `Quick (fun () ->
        let v = Intvec.create ~chunk_bits:2 () in
        Intvec.push v 1;
        Intvec.set v 0 9;
        check_int "set visible" 9 (Intvec.get v 0);
        check "get oob" true
          (try
             ignore (Intvec.get v 1);
             false
           with Invalid_argument _ -> true);
        check "set oob" true
          (try
             Intvec.set v (-1) 0;
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "intvec clear retains chunks, copy is independent"
      `Quick (fun () ->
        let v = Intvec.create ~chunk_bits:2 () in
        for i = 0 to 20 do Intvec.push v i done;
        let c = Intvec.copy v in
        Intvec.clear v;
        check_int "cleared" 0 (Intvec.length v);
        check_int "copy unaffected" 21 (Intvec.length c);
        for i = 0 to 20 do Intvec.push v (100 + i) done;
        check_int "reused" (100 + 7) (Intvec.get v 7);
        check_int "copy still old" 7 (Intvec.get c 7));
    Alcotest.test_case "objvec growth across chunk boundaries" `Quick
      (fun () ->
        let v = Objvec.create ~chunk_bits:2 ~dummy:"" () in
        for i = 0 to 99 do
          Objvec.push v (string_of_int i)
        done;
        check_int "length" 100 (Objvec.length v);
        for i = 0 to 99 do
          check_str "get" (string_of_int i) (Objvec.get v i)
        done;
        check "to_list" true
          (Objvec.to_list v = List.init 100 string_of_int);
        check "get oob" true
          (try
             ignore (Objvec.get v 100);
             false
           with Invalid_argument _ -> true);
        Objvec.clear v;
        check_int "cleared" 0 (Objvec.length v);
        Objvec.push v "again";
        check_str "reuse after clear" "again" (Objvec.get v 0));
  ]

(* the flat access log: bounds, views and index-ring equivalences *)

let log_bounds_tests =
  [
    Alcotest.test_case "get and sub check bounds" `Quick (fun () ->
        let m = Memory.create () in
        let a = Memory.alloc m ~name:"a" (Value.int 0) in
        for i = 1 to 5 do
          ignore (Memory.apply m ~pid:1 a (Primitive.Write (Value.int i)))
        done;
        let log = Memory.log m in
        let oob f =
          try
            ignore (f ());
            false
          with Invalid_argument _ -> true
        in
        check "get -1" true (oob (fun () -> Access_log.get log (-1)));
        check "get len" true (oob (fun () -> Access_log.get log 5));
        check "sub neg pos" true
          (oob (fun () -> Access_log.sub log ~pos:(-1) ~len:1));
        check "sub neg len" true
          (oob (fun () -> Access_log.sub log ~pos:0 ~len:(-1)));
        check "sub past end" true
          (oob (fun () -> Access_log.sub log ~pos:3 ~len:3));
        check_int "sub ok" 2
          (List.length (Access_log.sub log ~pos:3 ~len:2));
        check "sub empty at end" true
          (Access_log.sub log ~pos:5 ~len:0 = []));
  ]

(* a fuzzed log: random steps over a few objects/processes/transactions,
   driven through Memory so the index rings are built incrementally *)
let gen_log_ops =
  QCheck.(
    list_of_size Gen.(0 -- 120)
      (quad (int_range 1 4) (int_range 0 3) (int_range 0 2)
         (int_range 0 9)))

let build_log ops =
  let m = Memory.create () in
  let oids =
    Array.init 3 (fun i ->
        Memory.alloc m ~name:(Printf.sprintf "o%d" i) (Value.int 0))
  in
  List.iter
    (fun (pid, t, o, v) ->
      let tid = if t = 0 then None else Some (Tid.v t) in
      let prim =
        if v mod 2 = 0 then Primitive.Read
        else Primitive.Write (Value.int v)
      in
      ignore (Memory.apply m ~pid ?tid oids.(o) prim))
    ops;
  Memory.log m

let log_prop_tests =
  let open QCheck in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~count:100 ~name:"entries = of_seq (to_seq)" gen_log_ops
         (fun ops ->
           let log = build_log ops in
           Access_log.entries log = List.of_seq (Access_log.to_seq log)));
    QCheck_alcotest.to_alcotest
      (Test.make ~count:100
         ~name:"by_txn ring = filter over entries" gen_log_ops (fun ops ->
           let log = build_log ops in
           let entries = Access_log.entries log in
           List.for_all
             (fun t ->
               let tid = Tid.v t in
               Access_log.by_txn log tid
               = List.filter
                   (fun e -> e.Access_log.tid = Some tid)
                   entries)
             [ 1; 2; 3; 4 ]));
    QCheck_alcotest.to_alcotest
      (Test.make ~count:100
         ~name:"by_pid ring = filter over entries" gen_log_ops (fun ops ->
           let log = build_log ops in
           let entries = Access_log.entries log in
           List.for_all
             (fun pid ->
               Access_log.by_pid log pid
               = List.filter (fun e -> e.Access_log.pid = pid) entries
               && Access_log.pid_step_count log pid
                  = List.length (Access_log.by_pid log pid))
             [ 1; 2; 3; 4; 5 ]));
    QCheck_alcotest.to_alcotest
      (Test.make ~count:100
         ~name:"per-object ring walks = filter over entries" gen_log_ops
         (fun ops ->
           let log = build_log ops in
           let entries = Access_log.entries log in
           List.for_all
             (fun o ->
               let oid = Oid.of_int o in
               let rec walk i acc =
                 if i < 0 then acc
                 else walk (Access_log.prev_same_oid log i)
                        (Access_log.get log i :: acc)
               in
               walk (Access_log.last_index_on_oid log oid) []
               = List.filter
                   (fun e -> Oid.equal e.Access_log.oid oid)
                   entries)
             [ 0; 1; 2 ]));
  ]

(* property tests *)

let prop_tests =
  let open QCheck in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~count:200 ~name:"fetch_add accumulates"
         (list (int_range (-50) 50))
         (fun deltas ->
           let o = Base_object.create (Value.int 0) in
           List.iter
             (fun d -> ignore (Base_object.apply o (Primitive.Fetch_add d)))
             deltas;
           Value.to_int_exn (Base_object.value o)
           = List.fold_left ( + ) 0 deltas));
    QCheck_alcotest.to_alcotest
      (Test.make ~count:200 ~name:"cas model equivalence"
         (list (pair (int_range 0 3) (int_range 0 3)))
         (fun ops ->
           let o = Base_object.create (Value.int 0) in
           let model = ref 0 in
           List.for_all
             (fun (e, d) ->
               let r, _ =
                 Base_object.apply o
                   (Primitive.Cas
                      { expected = Value.int e; desired = Value.int d })
               in
               let expect_ok = !model = e in
               if expect_ok then model := d;
               Value.to_bool_exn r = expect_ok
               && Value.to_int_exn (Base_object.value o) = !model)
             ops));
    QCheck_alcotest.to_alcotest
      (Test.make ~count:100 ~name:"lock holder model"
         (list (pair bool (int_range 1 3)))
         (fun ops ->
           let o = Base_object.create Value.unit in
           let holder = ref None in
           List.for_all
             (fun (lock, p) ->
               if lock then begin
                 let r, _ = Base_object.apply o (Primitive.Try_lock p) in
                 let expect = !holder = None || !holder = Some p in
                 if !holder = None then holder := Some p;
                 Value.to_bool_exn r = expect
               end
               else begin
                 ignore (Base_object.apply o (Primitive.Unlock p));
                 if !holder = Some p then holder := None;
                 Base_object.lock_holder o = !holder
               end)
             ops));
  ]

let () =
  Alcotest.run "base"
    [
      ("value", value_tests);
      ("primitive", primitive_tests);
      ("base_object", base_object_tests);
      ("memory", memory_tests);
      ("vectors", vec_tests);
      ("access_log", log_bounds_tests @ log_prop_tests);
      ("properties", prop_tests);
    ]
