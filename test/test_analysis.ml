(* pclsan: vector-clock laws (qcheck), happens-before sanity on recorded
   executions, one positive and one negative trace per lint pass, the
   anomaly-catalogue cross-check, registry lookup, and the golden Figure-2
   lint JSONL snapshot. *)

open Core

let oid_name o = "oid" ^ string_of_int (Oid.to_int o)

(* a lint input from a bare history (the anomaly passes are history-level) *)
let input_of_history h =
  {
    Lint.log = [];
    history = h;
    name_of = oid_name;
    data_sets = None;
    tm = None;
    meta = [];
  }

(* a lint input from a recorded construction run *)
let input_of_run ?tm impl atoms =
  let _, fl = Pcl_figures.record_run impl atoms in
  { (Lint.input_of_flight fl) with Lint.data_sets = Some Pcl_txns.data_sets;
    tm }

let fired passes input =
  List.sort_uniq compare
    (List.map
       (fun (f : Lint.finding) -> f.Lint.pass)
       (Lints.run_passes passes input).Lints.findings)

let construction impl =
  match Pcl_constructions.build impl with
  | Ok c -> c
  | Error _ -> Alcotest.fail "construction unexpectedly failed"

(* ------------------------------------------------------------------ *)
(* vector-clock laws *)

let gen_vclock : Vclock.t QCheck.Gen.t =
  let open QCheck.Gen in
  map Vclock.of_list
    (list_size (int_bound 6)
       (pair (int_bound 5) (int_bound 20)))

let arb_vclock = QCheck.make ~print:(Fmt.to_to_string Vclock.pp) gen_vclock

let qtest name count law = QCheck.Test.make ~name ~count law

let vclock_laws =
  List.map QCheck_alcotest.to_alcotest
    [
      qtest "leq reflexive" 200 (QCheck.make gen_vclock)
        (fun a -> Vclock.leq a a);
      qtest "leq antisymmetric" 500
        (QCheck.pair arb_vclock arb_vclock)
        (fun (a, b) ->
          (not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b);
      qtest "leq transitive" 500
        (QCheck.triple arb_vclock arb_vclock arb_vclock)
        (fun (a, b, c) ->
          (not (Vclock.leq a b && Vclock.leq b c)) || Vclock.leq a c);
      qtest "join is an upper bound" 500
        (QCheck.pair arb_vclock arb_vclock)
        (fun (a, b) ->
          Vclock.leq a (Vclock.join a b) && Vclock.leq b (Vclock.join a b));
      qtest "join is the least upper bound" 500
        (QCheck.triple arb_vclock arb_vclock arb_vclock)
        (fun (a, b, c) ->
          (not (Vclock.leq a c && Vclock.leq b c))
          || Vclock.leq (Vclock.join a b) c);
      qtest "join commutative" 500
        (QCheck.pair arb_vclock arb_vclock)
        (fun (a, b) -> Vclock.equal (Vclock.join a b) (Vclock.join b a));
      qtest "join associative" 500
        (QCheck.triple arb_vclock arb_vclock arb_vclock)
        (fun (a, b, c) ->
          Vclock.equal
            (Vclock.join a (Vclock.join b c))
            (Vclock.join (Vclock.join a b) c));
      qtest "join idempotent" 200 arb_vclock
        (fun a -> Vclock.equal (Vclock.join a a) a);
      qtest "tick strictly increases" 200
        (QCheck.pair arb_vclock (QCheck.int_bound 5))
        (fun (a, p) -> Vclock.lt a (Vclock.tick a p));
      qtest "concurrent iff incomparable" 500
        (QCheck.pair arb_vclock arb_vclock)
        (fun (a, b) ->
          Vclock.concurrent a b
          = ((not (Vclock.leq a b)) && not (Vclock.leq b a)));
    ]

let test_vclock_canonical () =
  Alcotest.(check (list (pair int int)))
    "of_list drops zero components" [ (2, 3) ]
    (Vclock.to_list (Vclock.of_list [ (1, 0); (2, 3) ]));
  Alcotest.(check int)
    "get of missing component" 0
    (Vclock.get Vclock.empty 4);
  Alcotest.(check bool)
    "empty below everything" true
    (Vclock.leq Vclock.empty (Vclock.of_list [ (0, 1) ]))

(* ------------------------------------------------------------------ *)
(* happens-before on a recorded execution *)

let test_hb_order () =
  let input =
    input_of_run (Registry.find_exn "candidate")
      (Pcl_constructions.beta (construction (Registry.find_exn "candidate")))
  in
  let hb = Hb.analyse ~history:input.Lint.history input.Lint.log in
  let n = Hb.length hb in
  Alcotest.(check bool) "trace recorded" true (n > 0);
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if Hb.happens_before hb a b then begin
        if Hb.happens_before hb b a then
          Alcotest.failf "hb not antisymmetric: %d <-> %d" a b;
        (* hb is consistent with the interleaving order *)
        if a >= b then
          Alcotest.failf "hb against trace order: %d -> %d" a b
      end;
      (* program order: same-process steps are always ordered *)
      let pa = (Hb.step hb a).Hb.entry.Access_log.pid
      and pb = (Hb.step hb b).Hb.entry.Access_log.pid in
      if a < b && pa = pb && not (Hb.happens_before hb a b) then
        Alcotest.failf "program order lost: %d -> %d of p%d" a b pa
    done
  done;
  (* transitivity *)
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      for c = b + 1 to n - 1 do
        if
          Hb.happens_before hb a b
          && Hb.happens_before hb b c
          && not (Hb.happens_before hb a c)
        then Alcotest.failf "hb not transitive: %d %d %d" a b c
      done
    done
  done

let test_hb_serial_total () =
  (* the serial execution delta1 is totally ordered by realtime order *)
  let input =
    input_of_run (Registry.find_exn "candidate") Pcl_constructions.delta1
  in
  let hb = Hb.analyse ~history:input.Lint.history input.Lint.log in
  let n = Hb.length hb in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Hb.concurrent_pos hb a b then
        Alcotest.failf "serial steps unordered: %d and %d" a b
    done
  done

(* ------------------------------------------------------------------ *)
(* one positive and one negative trace per pass *)

let beta_input name =
  let impl = Registry.find_exn name in
  input_of_run ~tm:name impl (Pcl_constructions.beta (construction impl))

let test_race_pos_neg () =
  let fires name = fired [ Lint_passes.race ] (beta_input name) in
  Alcotest.(check (list string))
    "candidate's unsynchronized cells race" [ "race" ] (fires "candidate");
  Alcotest.(check (list string))
    "llsc-candidate is race-free" [] (fires "llsc-candidate")

let test_strict_dap_pos_neg () =
  let fires name = fired [ Lint_passes.strict_dap ] (beta_input name) in
  Alcotest.(check (list string))
    "dstm's central status word breaks strict DAP" [ "strict-dap" ]
    (fires "dstm");
  Alcotest.(check (list string))
    "candidate is strictly DAP" [] (fires "candidate")

let test_of_stall_pos_neg () =
  (* positive: tl-lock's stall probe (writer paused mid-commit, reader
     solo past the horizon) must trip of-stall *)
  let obs = Figure_lint.observe (Registry.find_exn "tl-lock") in
  Alcotest.(check bool)
    "tl-lock stalls on the probe" true
    (List.mem "of-stall" obs.Figure_lint.stall);
  (* negative: the serial execution shows no stall *)
  Alcotest.(check (list string))
    "serial run never stalls" []
    (fired [ Lint_passes.of_stall ]
       (input_of_run ~tm:"tl-lock" (Registry.find_exn "tl-lock")
          Pcl_constructions.delta1))

(* anomaly passes, driven by the catalogue's [lints] field: each entry
   lists exactly the anomaly passes that must fire on its history, so
   every pass gets its positives and all other entries are its negatives *)
let test_anomaly_catalogue () =
  let anomaly_passes =
    [ Lint_passes.lost_update; Lint_passes.write_skew;
      Lint_passes.torn_snapshot ]
  in
  List.iter
    (fun (a : Anomalies.anomaly) ->
      Alcotest.(check (list string))
        a.Anomalies.name
        (List.sort_uniq compare a.Anomalies.lints)
        (fired anomaly_passes (input_of_history a.Anomalies.history)))
    Anomalies.catalogue

let test_serial_clean () =
  (* acceptance: zero findings of any trace pass on a serial execution *)
  List.iter
    (fun name ->
      Alcotest.(check (list string))
        (name ^ " serial execution is lint-clean") []
        (fired Lint_passes.trace_passes
           (input_of_run ~tm:name (Registry.find_exn name)
              Pcl_constructions.delta1)))
    [ "tl-lock"; "candidate"; "si-clock"; "llsc-candidate" ]

(* ------------------------------------------------------------------ *)
(* the progress-guarantee passes *)

let progressiveness_fires h =
  fired [ Progress_lint.progressiveness ] (input_of_history h)

let test_progressiveness_pos_neg () =
  let open Build in
  (* positive: a solo transaction forcibly aborted at commit — there is
     no concurrent transaction to attribute the conflict to *)
  Alcotest.(check (list string))
    "unattributable forced abort trips the pass" [ "progressiveness" ]
    (progressiveness_fires (Build.history [ B (1, 1); R (1, "x", 0); Ca 1 ]));
  (* negative: the same abort with a concurrent conflicting writer is
     the TM exercising its progressive right *)
  Alcotest.(check (list string))
    "attributable abort is clean" []
    (progressiveness_fires
       (Build.history
          [ B (1, 1); B (2, 2); R (1, "x", 0); W (2, "x", 2); Ca 1; C 2 ]));
  (* negative: a client-requested abort is never the TM's fault *)
  Alcotest.(check (list string))
    "client abort is clean" []
    (progressiveness_fires (Build.history [ B (1, 1); R (1, "x", 0); A 1 ]))

(* a live workload run, recorded the way `pcl_tm lint' records it *)
let workload_input name =
  let impl = Registry.find_exn name in
  let fl = Flight.create () in
  Flight.with_recorder fl (fun () ->
      ignore
        (Workload.run impl
           {
             Workload.default with
             Workload.conflict_pct = 50;
             txns_per_proc = 10;
           }));
  { (Lint.input_of_flight fl) with Lint.tm = Some name }

let test_progressiveness_new_tms_clean () =
  (* the two new corners hold the guarantee they claim: every forced
     abort in a live contended run is attributable *)
  List.iter
    (fun name ->
      Alcotest.(check (list string))
        (name ^ " pays no progressiveness tax")
        []
        (fired [ Progress_lint.progressiveness ] (workload_input name)))
    [ "lp-progressive"; "pwf-readers" ]

let test_progressiveness_stall () =
  (* arm 2 positive: pause tl-lock's writer mid-commit and let the
     reader run solo for three horizons — it spins step-contention-free
     on the global lock without ever committing *)
  let impl = Registry.find_exn "tl-lock" in
  let solo = 3 * Lint.default.Lint.horizon in
  let rec scan k =
    if k > 40 (* Figure_lint's max_pause_depth *) then []
    else
      match
        fired
          [ Progress_lint.progressiveness ]
          (input_of_run ~tm:"tl-lock" impl
             [ Schedule.Steps (1, k); Schedule.Steps (3, solo) ])
      with
      | [] -> scan (k + 1)
      | fs -> fs
  in
  Alcotest.(check (list string))
    "a paused lock holder breaks tl-lock's commit obligation"
    [ "progressiveness" ] (scan 1)

let test_pwf_reader_scan () =
  let scan name =
    Progress_lint.reader_scan Lint.default (Registry.find_exn name)
  in
  (match scan "tl-lock" with
  | Progress_lint.Reader_stalls _ -> ()
  | _ -> Alcotest.fail "tl-lock must block the reader on a suspended writer");
  (match scan "lp-progressive" with
  | Progress_lint.Reader_aborts k when k > 0 -> ()
  | _ ->
      Alcotest.fail
        "lp-progressive must abort the reader over a suspended writer's \
         lock");
  List.iter
    (fun name ->
      match scan name with
      | Progress_lint.Reader_wait_free -> ()
      | _ -> Alcotest.failf "%s readers should pass the branch scan" name)
    [ "pwf-readers"; "si-clock"; "pram-local" ];
  Alcotest.(check int)
    "pwf-readers: no read-only aborts under fair contention" 0
    (Progress_lint.reader_aborts_under_contention
       (Registry.find_exn "pwf-readers"))

let test_pram_wait_free_but_inconsistent () =
  (* pram-local sits at the opposite corner of pwf-readers: its readers
     are wait-free (the pwf pass reports only the Info classification)
     while the expected-findings table charges it the full anomaly tax *)
  let input =
    { (input_of_history (History.of_list [])) with Lint.tm = Some "pram-local" }
  in
  (match (Lints.run_passes [ Progress_lint.pwf ] input).Lints.findings with
  | [ f ] ->
      Alcotest.(check bool) "only an Info finding" true
        (f.Lint.severity = Lint.Info);
      Alcotest.(check string) "classification pinned"
        "partial-wait-freedom classification for pram-local: read-only \
         wait-free, updaters wait-free"
        f.Lint.message
  | _ -> Alcotest.fail "expected exactly the Info classification");
  Alcotest.(check (list string))
    "pram-local's tax is consistency, not liveness"
    [ "lost-update"; "race"; "torn-snapshot"; "write-skew" ]
    (List.sort compare (Lints.expected_for (Some "pram-local")))

(* the qcheck law: the progressiveness verdict over a TM's bounded
   interleaving space does not depend on the exploration order — sleep-set
   DPOR and the naive DFS agree on the set of finding messages *)
let progressiveness_verdicts ~por impl =
  let acc = ref [] in
  let on_execution ~strongest:_ (r : Sim.result) =
    let input =
      {
        Lint.log = r.Sim.log;
        history = r.Sim.history;
        name_of = Memory.name_of r.Sim.mem;
        data_sets = Some Explore_sweep.data_sets;
        tm = Some (Registry.name impl);
        meta = [];
      }
    in
    acc :=
      List.map
        (fun (f : Lint.finding) -> f.Lint.message)
        (Lints.run_passes [ Progress_lint.progressiveness ] input)
          .Lints.findings
      @ !acc
  in
  ignore (Explore_sweep.run ~por ~on_execution impl);
  List.sort_uniq compare !acc

let progress_laws =
  List.map QCheck_alcotest.to_alcotest
    [
      qtest "progressiveness verdicts invariant under DPOR" 10
        (QCheck.make
           ~print:(fun i -> Registry.name (List.nth Registry.all i))
           (QCheck.Gen.int_bound (List.length Registry.all - 1)))
        (fun i ->
          let impl = List.nth Registry.all i in
          progressiveness_verdicts ~por:true impl
          = progressiveness_verdicts ~por:false impl);
    ]

(* ------------------------------------------------------------------ *)
(* the figure-consistency pass *)

let test_figure_expectations () =
  (* positive: the recorded expectations hold for every registered TM,
     so the pass itself reports nothing *)
  List.iter
    (fun impl ->
      let (module M : Tm_intf.S) = impl in
      match Figure_lint.expected M.name with
      | None -> Alcotest.failf "no expectation recorded for %s" M.name
      | Some _ ->
          Alcotest.(check (list string))
            (M.name ^ " figure expectations hold") []
            (fired [ Figure_lint.pass ]
               { (input_of_history (History.of_list [])) with
                 Lint.tm = Some M.name }))
    [ Registry.find_exn "candidate"; Registry.find_exn "tl-lock";
      Registry.find_exn "pram-local" ]

let test_figure_observation_kinds () =
  (* the three corners of the triangle observed directly *)
  let obs name = Figure_lint.observe (Registry.find_exn name) in
  (match (obs "tl-lock").Figure_lint.outcome with
  | Figure_lint.Liveness_blocked _ -> ()
  | _ -> Alcotest.fail "tl-lock should block the construction");
  (match (obs "pram-local").Figure_lint.outcome with
  | Figure_lint.No_flip _ -> ()
  | _ -> Alcotest.fail "pram-local should never flip the reader");
  match (obs "candidate").Figure_lint.outcome with
  | Figure_lint.Built fires ->
      Alcotest.(check (list string))
        "candidate's beta races" [ "race" ] fires
  | _ -> Alcotest.fail "candidate's construction should build"

(* ------------------------------------------------------------------ *)
(* registry: lookup, prefixes, plug-ins, expected classification *)

let test_lookup () =
  (match Lints.lookup "torn-snapshot" with
  | Lints.Found p ->
      Alcotest.(check string) "exact" "torn-snapshot" p.Lint.name
  | _ -> Alcotest.fail "exact lookup failed");
  (match Lints.lookup "tor" with
  | Lints.Found p ->
      Alcotest.(check string) "prefix" "torn-snapshot" p.Lint.name
  | _ -> Alcotest.fail "prefix lookup failed");
  (match Lints.lookup "no-such-pass" with
  | Lints.Unknown -> ()
  | _ -> Alcotest.fail "unknown name should not resolve");
  match Lints.lookup "" with
  | Lints.Ambiguous names ->
      Alcotest.(check bool)
        "empty prefix matches everything" true
        (List.length names >= List.length Lints.builtin)
  | _ -> Alcotest.fail "empty prefix should be ambiguous"

let test_plugin_registration () =
  let dummy =
    {
      Lint.name = "test-dummy";
      describe = "plug-in used by the test suite";
      paper = "n/a";
      run = (fun _ _ -> []);
    }
  in
  Lint.register dummy;
  Alcotest.(check bool)
    "plug-in listed" true
    (List.exists
       (fun (p : Lint.pass) -> p.Lint.name = "test-dummy")
       (Lints.all ()));
  match Lints.lookup "test-dummy" with
  | Lints.Found p ->
      Alcotest.(check string) "plug-in resolvable" "test-dummy" p.Lint.name
  | _ -> Alcotest.fail "plug-in not resolvable"

let test_expected_classification () =
  let finding pass severity =
    {
      Lint.pass;
      severity;
      step = None;
      txns = [];
      oids = [];
      witness_steps = [];
      message = "x";
    }
  in
  Alcotest.(check bool)
    "strict-dap expected for tl2-clock" true
    (Lints.is_expected ~tm:(Some "tl2-clock")
       (finding "strict-dap" Lint.Error));
  Alcotest.(check bool)
    "strict-dap a surprise for candidate" false
    (Lints.is_expected ~tm:(Some "candidate")
       (finding "strict-dap" Lint.Error));
  Alcotest.(check bool)
    "unknown TM expects nothing" false
    (Lints.is_expected ~tm:None (finding "race" Lint.Warning));
  Alcotest.(check bool)
    "info findings always expected" true
    (Lints.is_expected ~tm:None (finding "race" Lint.Info))

(* ------------------------------------------------------------------ *)
(* golden lint JSONL for Figure 2 (beta' on the candidate TM) *)

let test_golden_fig2_jsonl () =
  let impl = Registry.find_exn "candidate" in
  let input =
    input_of_run ~tm:"candidate" impl
      (Pcl_constructions.beta' (construction impl))
  in
  let lines =
    List.map
      (fun f -> Obs_json.to_string (Lint.finding_json f))
      (Lints.run_passes Lint_passes.trace_passes input).Lints.findings
  in
  Alcotest.(check (list string))
    "figure 2 lint lines"
    [
      "{\"schema\":1,\"type\":\"finding\",\"pass\":\"race\",\"severity\":\"warning\",\"step\":11,\"txns\":[1,2],\"oids\":[0],\"witness_steps\":[5,11],\"message\":\"unordered conflicting accesses to cell:a: p1's cas (step 5) and p2's read (step 11) have no happens-before edge\"}";
      "{\"schema\":1,\"type\":\"finding\",\"pass\":\"race\",\"severity\":\"warning\",\"step\":15,\"txns\":[2,5],\"oids\":[2],\"witness_steps\":[14,15],\"message\":\"unordered conflicting accesses to cell:b2: p2's cas (step 14) and p5's read (step 15) have no happens-before edge\"}";
      "{\"schema\":1,\"type\":\"finding\",\"pass\":\"race\",\"severity\":\"warning\",\"step\":20,\"txns\":[2,5],\"oids\":[5],\"witness_steps\":[10,20],\"message\":\"unordered conflicting accesses to cell:b5: p2's read (step 10) and p5's cas (step 20) have no happens-before edge\"}";
      "{\"schema\":1,\"type\":\"finding\",\"pass\":\"race\",\"severity\":\"warning\",\"step\":36,\"txns\":[1,7],\"oids\":[0],\"witness_steps\":[5,36],\"message\":\"unordered conflicting accesses to cell:a: p1's cas (step 5) and p7's read (step 36) have no happens-before edge\"}";
      "{\"schema\":1,\"type\":\"finding\",\"pass\":\"race\",\"severity\":\"warning\",\"step\":36,\"txns\":[2,7],\"oids\":[0],\"witness_steps\":[12,36],\"message\":\"unordered conflicting accesses to cell:a: p2's cas (step 12) and p7's read (step 36) have no happens-before edge\"}";
      "{\"schema\":1,\"type\":\"finding\",\"pass\":\"race\",\"severity\":\"warning\",\"step\":43,\"txns\":[1,7],\"oids\":[7],\"witness_steps\":[2,43],\"message\":\"unordered conflicting accesses to cell:b7: p1's read (step 2) and p7's cas (step 43) have no happens-before edge\"}";
      "{\"schema\":1,\"type\":\"finding\",\"pass\":\"race\",\"severity\":\"warning\",\"step\":43,\"txns\":[2,7],\"oids\":[7],\"witness_steps\":[9,43],\"message\":\"unordered conflicting accesses to cell:b7: p2's read (step 9) and p7's cas (step 43) have no happens-before edge\"}";
    ]
    lines

let () =
  Alcotest.run "analysis"
    [
      ("vclock-laws", vclock_laws);
      ( "vclock",
        [ Alcotest.test_case "canonical form" `Quick test_vclock_canonical ]
      );
      ( "hb",
        [
          Alcotest.test_case "partial order on beta" `Quick test_hb_order;
          Alcotest.test_case "serial runs totally ordered" `Quick
            test_hb_serial_total;
        ] );
      ( "passes",
        [
          Alcotest.test_case "race pos/neg" `Quick test_race_pos_neg;
          Alcotest.test_case "strict-dap pos/neg" `Quick
            test_strict_dap_pos_neg;
          Alcotest.test_case "of-stall pos/neg" `Quick test_of_stall_pos_neg;
          Alcotest.test_case "anomaly catalogue" `Quick
            test_anomaly_catalogue;
          Alcotest.test_case "serial executions clean" `Quick
            test_serial_clean;
        ] );
      ( "progress",
        [
          Alcotest.test_case "progressiveness pos/neg" `Quick
            test_progressiveness_pos_neg;
          Alcotest.test_case "new TMs progressiveness-clean" `Quick
            test_progressiveness_new_tms_clean;
          Alcotest.test_case "stalled commit obligation" `Quick
            test_progressiveness_stall;
          Alcotest.test_case "pwf reader scan" `Quick test_pwf_reader_scan;
          Alcotest.test_case "pram-local wait-free but inconsistent" `Quick
            test_pram_wait_free_but_inconsistent;
        ] );
      ("progress-laws", progress_laws);
      ( "figure-consistency",
        [
          Alcotest.test_case "expectations hold" `Slow
            test_figure_expectations;
          Alcotest.test_case "observation kinds" `Quick
            test_figure_observation_kinds;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lookup and prefixes" `Quick test_lookup;
          Alcotest.test_case "plug-in registration" `Quick
            test_plugin_registration;
          Alcotest.test_case "expected classification" `Quick
            test_expected_classification;
        ] );
      ( "golden",
        [
          Alcotest.test_case "figure-2 lint JSONL" `Quick
            test_golden_fig2_jsonl;
        ] );
    ]
