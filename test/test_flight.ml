(* The flight recorder: ring-buffer wraparound, the JSONL artifact
   round-trip, deterministic replay of a dumped schedule, the golden
   Figure-1 timeline, registry prefix lookup, and unsat-core provenance. *)

open Core

let j = Obs_json.to_string

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Access_log.entry equality via the artifact codecs *)
let entry_eq (a : Access_log.entry) (b : Access_log.entry) =
  a.Access_log.index = b.Access_log.index
  && a.Access_log.pid = b.Access_log.pid
  && a.Access_log.tid = b.Access_log.tid
  && Oid.equal a.Access_log.oid b.Access_log.oid
  && a.Access_log.changed = b.Access_log.changed
  && j (Flight.prim_json a.Access_log.prim)
     = j (Flight.prim_json b.Access_log.prim)
  && j (Flight.value_json a.Access_log.response)
     = j (Flight.value_json b.Access_log.response)

let entry i pid =
  {
    Access_log.index = i;
    pid;
    tid = Some (Tid.v pid);
    oid = Oid.of_int (i mod 3);
    prim = Primitive.Write (Value.int i);
    response = Value.unit;
    changed = true;
  }

(* ------------------------------------------------------------------ *)
(* ring buffer *)

let test_wraparound () =
  let fl = Flight.create ~cap:4 () in
  for i = 0 to 9 do
    Flight.record fl (entry i 1)
  done;
  Alcotest.(check int) "recorded" 10 (Flight.recorded fl);
  Alcotest.(check int) "dropped" 6 (Flight.dropped fl);
  Alcotest.(check (list int))
    "last cap steps retained, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Access_log.entry) -> e.Access_log.index)
       (Flight.steps fl));
  Flight.reset fl;
  Alcotest.(check int) "reset empties" 0 (Flight.recorded fl);
  Alcotest.(check int) "reset clears drops" 0 (Flight.dropped fl)

let test_wraparound_export () =
  let fl = Flight.create ~cap:3 () in
  for i = 0 to 4 do
    Flight.record fl (entry i (1 + (i mod 2)))
  done;
  let text = Flight.to_jsonl fl in
  match Flight.parse text with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok fl' ->
      Alcotest.(check int) "dropped survives import" 2 (Flight.dropped fl');
      Alcotest.(check int) "recorded survives import" 5 (Flight.recorded fl');
      Alcotest.(check string) "re-export is identical" text
        (Flight.to_jsonl fl')

(* ------------------------------------------------------------------ *)
(* record -> export -> import round-trip on a real execution *)

let record_delta1 () =
  let impl = Registry.find_exn "candidate" in
  let fl = Flight.create () in
  let (_ : Pcl_harness.run) =
    Flight.with_recorder fl (fun () ->
        Pcl_harness.run impl Pcl_constructions.delta1)
  in
  Flight.set_meta fl "tm" "candidate";
  fl

let test_roundtrip () =
  let fl = record_delta1 () in
  Flight.add_verdict fl
    {
      Flight.source = "demo";
      verdict = "unsat";
      axiom = "demo axiom";
      witness_txns = [ Tid.v 1 ];
      witness_steps = [ 3; 4 ];
    };
  Alcotest.(check bool) "recorded something" true (Flight.recorded fl > 0);
  let text = Flight.to_jsonl fl in
  match Flight.parse text with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok fl' ->
      Alcotest.(check string) "re-export is identical" text
        (Flight.to_jsonl fl');
      Alcotest.(check bool) "steps round-trip" true
        (List.for_all2 entry_eq (Flight.steps fl) (Flight.steps fl'));
      Alcotest.(check bool) "history rounds-trips" true
        (List.for_all2 Event.equal
           (History.to_list (Flight.history fl))
           (History.to_list (Flight.history fl')));
      Alcotest.(check (list (pair string string)))
        "meta round-trips" (Flight.meta fl) (Flight.meta fl');
      Alcotest.(check int) "verdicts round-trip" 1
        (List.length (Flight.verdicts fl'))

(* ------------------------------------------------------------------ *)
(* deterministic replay: the schedule stored in a dumped artifact
   reproduces the recorded step stream bit-for-bit *)

let test_replay_from_artifact () =
  let fl = record_delta1 () in
  let text = Flight.to_jsonl fl in
  let fl' = Result.get_ok (Flight.parse text) in
  let schedule_str =
    Option.get (Flight.meta_value fl' "schedule")
  in
  let atoms = Result.get_ok (Schedule.of_string schedule_str) in
  let impl = Registry.find_exn "candidate" in
  let fl2 = Flight.create () in
  let (_ : Pcl_harness.run) =
    Flight.with_recorder fl2 (fun () -> Pcl_harness.run impl atoms)
  in
  Alcotest.(check int)
    "same number of steps"
    (List.length (Flight.steps fl'))
    (List.length (Flight.steps fl2));
  Alcotest.(check bool) "replayed steps are bit-identical" true
    (List.for_all2 entry_eq (Flight.steps fl') (Flight.steps fl2))

let test_schedule_string_roundtrip () =
  let atoms =
    [ Schedule.Steps (1, 7); Schedule.Until_done 3; Schedule.Steps (12, 1) ]
  in
  let s = Schedule.to_string atoms in
  Alcotest.(check string) "compact form" "p1:7,p3:*,p12:1" s;
  Alcotest.(check bool) "of_string inverts to_string" true
    (Result.get_ok (Schedule.of_string s) = atoms);
  Alcotest.(check bool) "bad token rejected" true
    (Result.is_error (Schedule.of_string "p1:x"))

(* ------------------------------------------------------------------ *)
(* golden render: Figure 1 (top) for the candidate TM *)

let test_golden_figure1 () =
  let impl = Registry.find_exn "candidate" in
  let c = Result.get_ok (Pcl_constructions.build impl) in
  let rendered =
    Pcl_figures.render_timeline impl
      (Pcl_constructions.alpha1_s1_alpha3 c)
      ~highlight_steps:(fun run ->
        match Pcl_harness.nth_step_of_pid run 1 c.Pcl_constructions.k1 with
        | Some e -> [ e.Access_log.index ]
        | None -> [])
  in
  let expected =
    String.concat "\n"
      [
        "step        0          10         ";
        "p1         (rrrrrcrc..............";
        "p3         .........(rrrrrcrcrcrcC";
        "witness            ^              ";
        "x:cell:b1  .......-x.-..-.........";
        "x:cell:b3  .-..-.........-x.......";
        Timeline.legend;
        "";
      ]
  in
  Alcotest.(check string) "figure 1 golden render" expected rendered

(* ------------------------------------------------------------------ *)
(* registry prefix lookup *)

let test_registry_lookup () =
  (match Registry.lookup "tl" with
  | Registry.Ambiguous candidates ->
      Alcotest.(check (list string))
        "ambiguous candidates listed" [ "tl-lock"; "tl2-clock" ] candidates
  | _ -> Alcotest.fail "expected Ambiguous for \"tl\"");
  (match Registry.lookup "tl2" with
  | Registry.Found (module M : Tm_intf.S) ->
      Alcotest.(check string) "unique prefix resolves" "tl2-clock" M.name
  | _ -> Alcotest.fail "expected Found for \"tl2\"");
  (match Registry.lookup "nope" with
  | Registry.Unknown -> ()
  | _ -> Alcotest.fail "expected Unknown for \"nope\"");
  (match Registry.find_exn "tl" with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "error names the candidates" true
        (contains ~sub:"tl-lock" msg && contains ~sub:"tl2-clock" msg)
  | _ -> Alcotest.fail "expected Invalid_argument for ambiguous find_exn");
  (* the new TM corners made two more one-letter prefixes ambiguous; pin
     the exact error text so shell-completion docs stay honest *)
  (match Registry.find_exn "l" with
  | exception Invalid_argument msg ->
      Alcotest.(check string) "\"l\" ambiguity message"
        "Registry.find_exn: \"l\" is ambiguous (matches llsc-candidate, \
         lp-progressive)"
        msg
  | _ -> Alcotest.fail "expected Invalid_argument for \"l\"");
  match Registry.find_exn "p" with
  | exception Invalid_argument msg ->
      Alcotest.(check string) "\"p\" ambiguity message"
        "Registry.find_exn: \"p\" is ambiguous (matches pram-local, \
         pwf-readers)"
        msg
  | _ -> Alcotest.fail "expected Invalid_argument for \"p\""

(* ------------------------------------------------------------------ *)
(* provenance: the unsat core of write-skew under serializability is the
   skewing pair itself *)

let test_provenance_write_skew () =
  let a = Anomalies.find "write-skew" in
  let checker = Checkers.find_exn "serializability" in
  match Provenance.of_unsat checker a.Anomalies.history with
  | None -> Alcotest.fail "serializability should reject write-skew"
  | Some p ->
      Alcotest.(check (list int))
        "core is the skewing pair" [ 1; 2 ]
        (List.sort compare (List.map Tid.to_int p.Provenance.txns));
      Alcotest.(check string) "source" "serializability" p.Provenance.source;
      Alcotest.(check bool) "axiom is worded" true
        (String.length p.Provenance.axiom > 0)

let () =
  Alcotest.run "flight"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound" `Quick test_wraparound;
          Alcotest.test_case "wraparound export" `Quick
            test_wraparound_export;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "replay from artifact" `Quick
            test_replay_from_artifact;
          Alcotest.test_case "schedule strings" `Quick
            test_schedule_string_roundtrip;
        ] );
      ( "timeline",
        [ Alcotest.test_case "figure 1 golden" `Quick test_golden_figure1 ] );
      ( "registry",
        [ Alcotest.test_case "prefix lookup" `Quick test_registry_lookup ] );
      ( "provenance",
        [
          Alcotest.test_case "write-skew core" `Quick
            test_provenance_write_skew;
        ] );
    ]
